package simnet

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/faults"
)

// TCPExchanger is implemented by transports that can retry a truncated
// answer over a reliable stream. Network and Shard both implement it; the
// resolver uses it for TC-bit fallback when the transport offers it.
type TCPExchanger interface {
	Exchanger
	ExchangeTCP(src, dst netip.Addr, q *dns.Message) (*dns.Message, error)
}

// exchangeDomain is one clock domain of the simulated network — the global
// Network or a single Shard. Exchange and ExchangeTCP on both are thin
// wrappers around exchangeOn over this interface, so the fault-injection
// and capture semantics cannot drift between the sequential and sharded
// paths.
type exchangeDomain interface {
	admit(dst netip.Addr) (*serverEntry, error)
	decideFault(dst netip.Addr, tcp bool) (faults.Decision, bool)
	Advance(d time.Duration)
	// commit advances the domain clock by rtt and returns the new time plus
	// the tap lists to feed, in firing order (shards return their own taps
	// first, then the global ones).
	commit(rtt time.Duration) (now time.Duration, taps, globalTaps []Tap)
	swapClient(addr netip.Addr) netip.Addr
	attributedClient(src netip.Addr) netip.Addr
	owner() *Network
}

// exchangeOn is the single exchange path shared by Network and Shard, for
// both UDP and TCP semantics. The fault plan (if any) is consulted after
// legacy admission (down flags, every-Nth loss): a Down or Drop decision
// charges the timeout cost to the domain clock and fails like the legacy
// injectors; a delivered response may be mutated (byzantine answers,
// forced truncation, wire corruption) before the clock, taps, and byte
// accounting see it, so captures always reflect what was "on the wire".
func exchangeOn(d exchangeDomain, src, dst netip.Addr, q *dns.Message, tcp bool) (*dns.Message, error) {
	entry, err := d.admit(dst)
	if err != nil {
		if entry != nil {
			d.Advance(timeoutCost)
		}
		return nil, err
	}

	dec, faulted := d.decideFault(dst, tcp)
	if faulted {
		if dec.Down {
			d.Advance(timeoutCost)
			return nil, fmt.Errorf("%w: %s (%s)", ErrServerDown, entry.name, dst)
		}
		if dec.Drop {
			d.Advance(timeoutCost)
			return nil, fmt.Errorf("%w: %s (%s)", ErrPacketLoss, entry.name, dst)
		}
	}

	// A query entering the recursive resolver is resolved synchronously
	// inside roundTrip, so every exchange the resolver issues before
	// returning belongs to this stub: mark it as the attribution client
	// for the duration (restored on return, so direct exchanges outside a
	// stub query stay self-attributed).
	if entry.role == RoleRecursive {
		prev := d.swapClient(src)
		defer d.swapClient(prev)
	}

	resp, question, qLen, rLen, err := roundTrip(entry, src, q)
	if err != nil {
		return nil, err
	}

	if faulted {
		resp, rLen, err = applyResponseFaults(dec, resp, rLen)
		if err != nil {
			// The mutated packet no longer parses: to the client this is
			// indistinguishable from loss — a timeout.
			d.Advance(timeoutCost)
			return nil, fmt.Errorf("%w: %s (%s)", ErrCorruptResponse, entry.name, dst)
		}
	}

	rtt := 2 * entry.latency
	if tcp {
		// Stream setup (connect + first byte) costs one extra round trip.
		rtt += 2 * entry.latency
	}
	rtt += dec.ExtraLatency
	now, taps, globalTaps := d.commit(rtt)
	d.owner().account(qLen, rLen)

	ev := Event{
		Time:      now,
		Src:       src,
		Dst:       dst,
		Client:    d.attributedClient(src),
		DstName:   entry.name,
		DstRole:   entry.role,
		Question:  question,
		QuerySize: qLen,
		RespSize:  rLen,
		RCode:     resp.Header.RCode,
		RTT:       rtt,
		ZBit:      resp.Header.Z,
	}
	for _, tap := range taps {
		tap(ev)
	}
	for _, tap := range globalTaps {
		tap(ev)
	}
	return resp, nil
}

// applyResponseFaults produces the response the client actually receives
// under decision dec: byzantine mutation, forced truncation, and wire
// corruption, in that order (a truncated packet can still be corrupted on
// the wire). The handler's message is never touched — mutations work on a
// Clone — and the returned size is the mutated packet's encoded size, so
// taps and byte accounting stay wire-accurate. A non-nil error means the
// corrupted packet no longer parses and must be treated as a timeout.
func applyResponseFaults(dec faults.Decision, resp *dns.Message, rLen int) (*dns.Message, int, error) {
	if dec.Byzantine == faults.ByzNone && !dec.Truncate && !dec.Corrupt {
		return resp, rLen, nil
	}
	m := resp.Clone()
	switch dec.Byzantine {
	case faults.ByzServFail:
		m.Header.RCode = dns.RCodeServFail
		m.Header.AD = false
		m.Answer, m.Authority, m.Additional = nil, nil, nil
	case faults.ByzBogusSig:
		bogusSigs(m, dec.Entropy)
	case faults.ByzWrongDenial:
		wrongDenial(m)
	}
	if dec.Truncate {
		// An overloaded or size-capped server sets TC and sends only the
		// question; the client is expected to retry over TCP.
		m.Header.TC = true
		m.Answer, m.Authority, m.Additional = nil, nil, nil
	}
	wire, err := m.Encode()
	if err != nil {
		return nil, 0, fmt.Errorf("encoding faulted response: %w", err)
	}
	if dec.Corrupt {
		faults.Corrupt(dec.Entropy, wire)
		decoded, err := dns.DecodeMessage(wire)
		if err != nil {
			return nil, 0, err
		}
		return decoded, len(wire), nil
	}
	return m, len(wire), nil
}

// bogusSigs replaces every RRSIG in the message with a copy whose signature
// bytes are deterministically garbled: the records are all present, but
// DNSSEC verification fails — the "stale or bogus signature" registry
// failure mode. RData is shared with the handler's message, so the touched
// RRSIGData values are deep-copied before mutation.
func bogusSigs(m *dns.Message, entropy uint64) {
	mangle := func(rrs []dns.RR) {
		for i := range rrs {
			sig, ok := rrs[i].Data.(*dns.RRSIGData)
			if !ok || len(sig.Signature) == 0 {
				continue
			}
			c := *sig
			c.Signature = append([]byte(nil), sig.Signature...)
			faults.Corrupt(entropy, c.Signature)
			rrs[i].Data = &c
		}
	}
	mangle(m.Answer)
	mangle(m.Authority)
	mangle(m.Additional)
}

// wrongDenial breaks denial-of-existence on negative responses: NXDOMAIN is
// flattened to an unproven empty NOERROR and the authority section (SOA,
// NSEC/NSEC3 spans and their signatures) is stripped, so clients can never
// validate the denial or engage aggressive negative caching. Responses that
// carry answers pass through untouched.
func wrongDenial(m *dns.Message) {
	if len(m.Answer) > 0 {
		return
	}
	if m.Header.RCode == dns.RCodeNXDomain {
		m.Header.RCode = dns.RCodeNoError
	}
	m.Header.AD = false
	m.Authority = nil
}

// SetFaultPlan attaches a seeded fault schedule to the link toward addr for
// exchanges made directly on the network (shards carry their own plans; see
// Shard.SetFaultPlan). Installing a plan — even an all-zero one — also
// starts per-link fault statistics: Attempts counts every query sent toward
// the server, which is the on-path observer's view of link load. A second
// call replaces the plan and resets its statistics.
func (n *Network) SetFaultPlan(addr netip.Addr, p faults.Plan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.faults == nil {
		n.faults = make(map[netip.Addr]*faults.State)
	}
	n.faults[addr] = faults.NewState(p)
	n.faultsOn.Store(true)
}

// ClearFaultPlans removes every fault plan (and its statistics) from the
// network.
func (n *Network) ClearFaultPlans() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = nil
	n.faultsOn.Store(false)
}

// FaultStats returns the fault counters for the link toward addr, and
// whether a plan is installed there.
func (n *Network) FaultStats(addr netip.Addr) (faults.Stats, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.faults[addr]
	if !ok {
		return faults.Stats{}, false
	}
	return st.Stats(), true
}

// decideFault evaluates the link's fault plan for one exchange. The
// faultsOn fast check keeps the no-faults hot path at a single atomic load.
func (n *Network) decideFault(dst netip.Addr, tcp bool) (faults.Decision, bool) {
	if !n.faultsOn.Load() {
		return faults.Decision{}, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.faults[dst]
	if !ok {
		return faults.Decision{}, false
	}
	if tcp {
		return st.DecideTCP(n.now), true
	}
	return st.Decide(n.now), true
}

// commit advances the network clock by rtt under the same lock that
// snapshots the tap list, preserving the pre-fault-layer ordering.
func (n *Network) commit(rtt time.Duration) (time.Duration, []Tap, []Tap) {
	n.mu.Lock()
	n.now += rtt
	now := n.now
	taps := n.taps
	n.mu.Unlock()
	return now, taps, nil
}

// owner implements exchangeDomain.
func (n *Network) owner() *Network { return n }

// ExchangeTCP is Exchange over a simulated reliable stream: packet loss,
// forced truncation, and wire corruption do not apply (TCP retransmits
// under the covers), but outages, latency faults, and byzantine answers
// still do, and stream setup costs one extra round trip. The resolver uses
// it to retry truncated UDP answers.
func (n *Network) ExchangeTCP(src, dst netip.Addr, q *dns.Message) (*dns.Message, error) {
	return exchangeOn(n, src, dst, q, true)
}

// SetFaultPlan attaches a seeded fault schedule to the link toward addr for
// exchanges made on this shard. Fault plans are strictly per clock domain:
// a shard never consults the network's plans (a shared mutable draw
// sequence would make results depend on worker interleaving), so sharded
// experiments install a plan on every shard, each advancing its own
// deterministic fault history. Statistics start at install; a second call
// replaces plan and statistics.
func (s *Shard) SetFaultPlan(addr netip.Addr, p faults.Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faults == nil {
		s.faults = make(map[netip.Addr]*faults.State)
	}
	s.faults[addr] = faults.NewState(p)
}

// FaultStats returns the shard's fault counters for the link toward addr,
// and whether a plan is installed there.
func (s *Shard) FaultStats(addr netip.Addr) (faults.Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.faults[addr]
	if !ok {
		return faults.Stats{}, false
	}
	return st.Stats(), true
}

// decideFault evaluates the shard's fault plan for one exchange.
func (s *Shard) decideFault(dst netip.Addr, tcp bool) (faults.Decision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faults == nil {
		return faults.Decision{}, false
	}
	st, ok := s.faults[dst]
	if !ok {
		return faults.Decision{}, false
	}
	if tcp {
		return st.DecideTCP(s.now), true
	}
	return st.Decide(s.now), true
}

// commit advances the shard clock by rtt and returns the shard taps plus
// the global taps (shard taps fire first, matching the pre-fault-layer
// ordering).
func (s *Shard) commit(rtt time.Duration) (time.Duration, []Tap, []Tap) {
	s.mu.Lock()
	s.now += rtt
	now := s.now
	taps := s.taps
	s.mu.Unlock()
	return now, taps, s.net.tapsSnapshot()
}

// owner implements exchangeDomain.
func (s *Shard) owner() *Network { return s.net }

// ExchangeTCP is the shard-clock variant of Network.ExchangeTCP.
func (s *Shard) ExchangeTCP(src, dst netip.Addr, q *dns.Message) (*dns.Message, error) {
	return exchangeOn(s, src, dst, q, true)
}

var (
	_ TCPExchanger = (*Network)(nil)
	_ TCPExchanger = (*Shard)(nil)
)
