// Package simnet provides the simulated internet the experiments run on:
// servers registered at IP addresses, a per-link latency model, a logical
// clock, wire-level byte accounting, and packet-capture taps.
//
// Every exchange encodes the query to RFC 1035 wire format, decodes it at
// the server, and does the same for the response, so captured sizes and
// parsing behavior match a real network. The clock is logical: it advances
// by the round-trip time of each exchange, making latency results
// deterministic and reproducible.
package simnet

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/faults"
)

// netError is a network-condition error that knows whether it represents a
// transient (retryable) condition; faults.IsTransient classifies through
// the Transient method without either package importing the other.
type netError struct {
	msg       string
	transient bool
}

// Error implements error.
func (e *netError) Error() string { return e.msg }

// Transient reports whether retrying could help (packet loss, timeouts) or
// not (no route, misconfiguration).
func (e *netError) Transient() bool { return e.transient }

// Errors returned by the network. All are classifiable with errors.Is and
// carry retryability for faults.IsTransient.
var (
	ErrNoRoute         error = &netError{"simnet: no server at address", false}
	ErrServerDown      error = &netError{"simnet: server down (timeout)", true}
	ErrPacketLoss      error = &netError{"simnet: packet lost (timeout)", true}
	ErrCorruptResponse error = &netError{"simnet: response corrupted on the wire (timeout)", true}
	ErrOversized       error = &netError{"simnet: response exceeds advertised UDP size", false}
	ErrDuplicateReg    error = &netError{"simnet: address already registered", false}
)

// Role labels what part of the DNS ecosystem a server plays; the threat
// model (involved vs. uninvolved party) is evaluated over roles plus query
// context.
type Role int

// Server roles.
const (
	RoleRoot Role = iota + 1
	RoleTLD
	RoleSLD
	RoleDLV
	RoleRecursive
	RoleStub
	RoleOther
)

var roleNames = map[Role]string{
	RoleRoot:      "root",
	RoleTLD:       "tld",
	RoleSLD:       "sld",
	RoleDLV:       "dlv",
	RoleRecursive: "recursive",
	RoleStub:      "stub",
	RoleOther:     "other",
}

// String implements fmt.Stringer.
func (r Role) String() string {
	if s, ok := roleNames[r]; ok {
		return s
	}
	return "unknown"
}

// Handler processes one decoded DNS query and produces a response.
type Handler interface {
	HandleQuery(q *dns.Message, from netip.Addr) (*dns.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(q *dns.Message, from netip.Addr) (*dns.Message, error)

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(q *dns.Message, from netip.Addr) (*dns.Message, error) {
	return f(q, from)
}

// WireResponder is an optional Handler extension for servers that keep a
// packet cache of encoded responses: HandleQueryWire returns the decoded
// response (caller-owned) together with its wire bytes appended to dst, so
// the exchange path gets the response size without encoding. The wire bytes
// must be exactly what resp.Encode() would produce.
type WireResponder interface {
	Handler
	HandleQueryWire(q *dns.Message, from netip.Addr, dst []byte) (resp *dns.Message, wire []byte, err error)
}

// referencePath switches every exchange to the seed codepath: full encode
// plus decode on both sides, no WireResponder fast path. Equivalence tests
// flip it to pin that the fast path changes no experiment output.
var referencePath atomic.Bool

// SetReferencePath toggles the seed-era exchange path (see referencePath).
func SetReferencePath(on bool) { referencePath.Store(on) }

// wireBufPool recycles per-exchange encode buffers.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// Exchanger is the client-side transport interface the recursive resolver
// uses; Network implements it, as does the real-UDP transport.
type Exchanger interface {
	Exchange(src, dst netip.Addr, q *dns.Message) (*dns.Message, error)
}

// Event is one captured query/response exchange.
type Event struct {
	// Time is the simulation time when the response arrived.
	Time time.Duration
	// Src and Dst address the exchange.
	Src, Dst netip.Addr
	// Client is the stub endpoint on whose behalf the exchange happened:
	// while a stub→recursive exchange is in flight, every nested exchange
	// the resolver issues carries the stub's address here; outside one it
	// equals Src. Taps use it to attribute registry observations to the
	// querying client. The zero value (an invalid Addr) only appears in
	// hand-constructed events and means "unattributed".
	Client netip.Addr
	// DstName and DstRole describe the responding server.
	DstName string
	DstRole Role
	// Question is the first question of the query.
	Question dns.Question
	// QuerySize and RespSize are wire sizes in octets.
	QuerySize, RespSize int
	// RCode is the response code.
	RCode dns.RCode
	// RTT is the simulated round-trip time of this exchange.
	RTT time.Duration
	// ZBit reports the response's reserved Z header bit (the Z-bit remedy).
	ZBit bool
}

// Tap observes captured events. Taps must not block.
type Tap func(ev Event)

type serverEntry struct {
	name    string
	role    Role
	latency time.Duration
	handler Handler
	down    bool
	// lossEveryN drops every Nth exchange deterministically (0 = none).
	lossEveryN int
	exchanges  int
}

// Network is the simulated internet.
type Network struct {
	mu      sync.Mutex
	servers map[netip.Addr]*serverEntry
	taps    []Tap
	now     time.Duration
	// client is the stub address of the in-flight stub→recursive exchange,
	// used to attribute the resolver's nested exchanges (Event.Client).
	// Like the clock, it is meaningful only on the sequential path;
	// concurrent audits use shards, which carry their own.
	client netip.Addr
	// faults holds per-link fault-injection state for exchanges made
	// directly on the network (shards carry their own; see Shard.faults).
	// faultsOn mirrors "any plan installed" so the no-faults hot path pays
	// one atomic load instead of a lock.
	faults   map[netip.Addr]*faults.State
	faultsOn atomic.Bool

	// Aggregate statistics, maintained as atomics so concurrent shards do
	// not contend on the network lock.
	totalQueries atomic.Int64
	totalBytes   atomic.Int64
}

// New creates an empty network.
func New() *Network {
	return &Network{servers: make(map[netip.Addr]*serverEntry)}
}

// Register places a server at addr with a one-way link latency.
func (n *Network) Register(addr netip.Addr, name string, role Role, latency time.Duration, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.servers[addr]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateReg, addr)
	}
	n.servers[addr] = &serverEntry{name: name, role: role, latency: latency, handler: h}
	return nil
}

// Replace installs a server at addr, overwriting any existing registration.
// Experiment sweeps use it to install a fresh resolver per data point while
// keeping the (expensive) universe.
func (n *Network) Replace(addr netip.Addr, name string, role Role, latency time.Duration, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[addr] = &serverEntry{name: name, role: role, latency: latency, handler: h}
}

// ResetTaps removes all capture taps (the aggregate counters are kept).
func (n *Network) ResetTaps() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.taps = nil
}

// SetDown marks a server unreachable (failure injection); queries to it
// cost a timeout and fail with ErrServerDown.
func (n *Network) SetDown(addr netip.Addr, down bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.servers[addr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, addr)
	}
	e.down = down
	return nil
}

// SetLoss makes a link drop every Nth exchange (deterministically, so
// experiments stay reproducible); 0 disables loss.
func (n *Network) SetLoss(addr netip.Addr, everyN int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.servers[addr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, addr)
	}
	e.lossEveryN = everyN
	return nil
}

// AddTap attaches a capture tap to every subsequent exchange.
func (n *Network) AddTap(tap Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.taps = append(n.taps, tap)
}

// Now returns the current simulation time.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Advance moves the simulation clock forward (used by trace-driven
// experiments between queries).
func (n *Network) Advance(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now += d
}

// Stats returns the total exchanges and bytes carried so far.
func (n *Network) Stats() (queries int, bytes int64) {
	return int(n.totalQueries.Load()), n.totalBytes.Load()
}

// account adds one exchange to the aggregate counters.
func (n *Network) account(qLen, rLen int) {
	n.totalQueries.Add(1)
	n.totalBytes.Add(int64(qLen + rLen))
}

// tapsSnapshot returns the current global tap list.
func (n *Network) tapsSnapshot() []Tap {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.taps
}

// timeoutCost is the simulated cost of a query to a dead server.
const timeoutCost = 2 * time.Second

// swapClient installs addr as the current attribution client and returns
// the previous one, so callers can restore it when the enclosing exchange
// finishes.
func (n *Network) swapClient(addr netip.Addr) netip.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	prev := n.client
	n.client = addr
	return prev
}

// attributedClient resolves the Event.Client for an exchange originating
// at src: the in-flight stub client if one is set, else src itself.
func (n *Network) attributedClient(src netip.Addr) netip.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.client.IsValid() {
		return n.client
	}
	return src
}

// admit looks up the server at dst and applies the failure-injection
// bookkeeping (down flags, deterministic every-Nth loss). On a down or lost
// exchange it returns the entry together with the error so the caller can
// charge the timeout to its own clock; on an unknown address the entry is
// nil.
func (n *Network) admit(dst netip.Addr) (*serverEntry, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	entry, ok := n.servers[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, dst)
	}
	if entry.down {
		return entry, fmt.Errorf("%w: %s (%s)", ErrServerDown, entry.name, dst)
	}
	entry.exchanges++
	if entry.lossEveryN > 0 && entry.exchanges%entry.lossEveryN == 0 {
		return entry, fmt.Errorf("%w: %s (%s)", ErrPacketLoss, entry.name, dst)
	}
	return entry, nil
}

// roundTrip pushes one query through the wire codec to a server handler,
// returning the first question and the wire sizes for capture accounting.
// It touches no clock and no shared counters, so shards and the global
// network share it.
//
// The fast path encodes into a pooled buffer, extracts the question with
// the single-pass DecodeQuestion, hands the caller's message to the handler
// (handlers treat queries as read-only, and every handler-built response
// already decodes to itself — pinned by the experiment equivalence test),
// and skips re-decoding the server's own response. Tap and capture
// semantics are unchanged: the question, sizes, rcode, and Z bit fed to
// taps are byte-derived exactly as before.
func roundTrip(entry *serverEntry, src netip.Addr, q *dns.Message) (resp *dns.Message, question dns.Question, qLen, rLen int, err error) {
	if referencePath.Load() {
		return roundTripReference(entry, src, q)
	}
	bufp := wireBufPool.Get().(*[]byte)
	defer func() {
		wireBufPool.Put(bufp)
	}()
	qWire, err := q.AppendEncode((*bufp)[:0])
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: encoding query: %w", err)
	}
	*bufp = qWire[:0] // keep grown capacity pooled
	qLen = len(qWire)
	question, err = dns.DecodeQuestion(qWire)
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: server-side decode: %w", err)
	}
	if wr, ok := entry.handler.(WireResponder); ok {
		resp, rWire, err := wr.HandleQueryWire(q, src, qWire[:0])
		if err != nil {
			return nil, question, 0, 0, fmt.Errorf("simnet: server %s: %w", entry.name, err)
		}
		*bufp = rWire[:0]
		return resp, question, qLen, len(rWire), nil
	}
	handled, err := entry.handler.HandleQuery(q, src)
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: server %s: %w", entry.name, err)
	}
	rWire, err := handled.AppendEncode(qWire[:0])
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: encoding response: %w", err)
	}
	*bufp = rWire[:0]
	return handled, question, qLen, len(rWire), nil
}

// roundTripReference is the seed exchange path: encode and decode on both
// sides of the wire. SetReferencePath(true) routes every exchange here.
func roundTripReference(entry *serverEntry, src netip.Addr, q *dns.Message) (resp *dns.Message, question dns.Question, qLen, rLen int, err error) {
	qWire, err := q.Encode()
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: encoding query: %w", err)
	}
	qDecoded, err := dns.DecodeMessage(qWire)
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: server-side decode: %w", err)
	}
	if len(qDecoded.Question) > 0 {
		question = qDecoded.Question[0]
	}
	handled, err := entry.handler.HandleQuery(qDecoded, src)
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: server %s: %w", entry.name, err)
	}
	rWire, err := handled.Encode()
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: encoding response: %w", err)
	}
	rDecoded, err := dns.DecodeMessage(rWire)
	if err != nil {
		return nil, question, 0, 0, fmt.Errorf("simnet: client-side decode: %w", err)
	}
	return rDecoded, question, len(qWire), len(rWire), nil
}

// Exchange sends a query from src to dst through the wire codec, invokes
// the destination handler, and returns the decoded response. It advances
// the clock by the link RTT, applies any fault plan on the link, feeds
// capture taps, and maintains aggregate counters. It implements Exchanger.
func (n *Network) Exchange(src, dst netip.Addr, q *dns.Message) (*dns.Message, error) {
	return exchangeOn(n, src, dst, q, false)
}
