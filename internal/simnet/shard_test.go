package simnet

import (
	"sync"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
)

func TestShardClockIsolation(t *testing.T) {
	n := New()
	if err := n.Register(serverAddr, "ns.test", RoleSLD, 25*time.Millisecond, echoHandler(false)); err != nil {
		t.Fatal(err)
	}
	sh := n.NewShard()
	q := dns.NewQuery(1, dns.MustName("example.com"), dns.TypeA, true)
	if _, err := sh.Exchange(clientAddr, serverAddr, q); err != nil {
		t.Fatalf("shard Exchange: %v", err)
	}
	if got := sh.Now(); got != 50*time.Millisecond {
		t.Fatalf("shard clock = %v, want 50ms", got)
	}
	if got := n.Now(); got != 0 {
		t.Fatalf("global clock moved to %v on shard traffic", got)
	}
	// Aggregate stats are shared.
	if queries, bytes := n.Stats(); queries != 1 || bytes == 0 {
		t.Fatalf("Stats = (%d, %d), want shard traffic accounted", queries, bytes)
	}
}

func TestShardOverlayShadowsGlobal(t *testing.T) {
	n := New()
	if err := n.Register(serverAddr, "global", RoleSLD, 25*time.Millisecond, echoHandler(false)); err != nil {
		t.Fatal(err)
	}
	sh := n.NewShard()
	sh.Register(serverAddr, "private", RoleSLD, 5*time.Millisecond, echoHandler(true))

	q := dns.NewQuery(1, dns.MustName("example.com"), dns.TypeA, true)
	var saw []Event
	sh.AddTap(func(ev Event) { saw = append(saw, ev) })
	resp, err := sh.Exchange(clientAddr, serverAddr, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Z {
		t.Fatal("exchange reached the global server, not the shard overlay")
	}
	if sh.Now() != 10*time.Millisecond {
		t.Fatalf("shard clock = %v, want overlay latency 10ms", sh.Now())
	}
	if len(saw) != 1 || saw[0].DstName != "private" {
		t.Fatalf("shard tap saw %+v", saw)
	}
	// The global path still reaches the global server.
	if resp, err := n.Exchange(clientAddr, serverAddr, q); err != nil || resp.Header.Z {
		t.Fatalf("global exchange: resp=%+v err=%v", resp, err)
	}
}

// TestConcurrentShardExchange drives many shards through the shared network
// at once; run under -race it guards the admit/account/tap paths.
func TestConcurrentShardExchange(t *testing.T) {
	n := New()
	if err := n.Register(serverAddr, "ns.test", RoleSLD, 25*time.Millisecond, echoHandler(false)); err != nil {
		t.Fatal(err)
	}
	var globalEvents int
	var globalMu sync.Mutex
	n.AddTap(func(Event) {
		globalMu.Lock()
		globalEvents++
		globalMu.Unlock()
	})

	const shards, perShard = 8, 50
	var wg sync.WaitGroup
	clocks := make([]time.Duration, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := n.NewShard()
			for j := 0; j < perShard; j++ {
				q := dns.NewQuery(uint16(j), dns.MustName("example.com"), dns.TypeA, true)
				if _, err := sh.Exchange(clientAddr, serverAddr, q); err != nil {
					t.Errorf("shard %d: %v", i, err)
					return
				}
			}
			clocks[i] = sh.Now()
		}(i)
	}
	wg.Wait()

	for i, c := range clocks {
		if want := time.Duration(perShard) * 50 * time.Millisecond; c != want {
			t.Errorf("shard %d clock = %v, want %v", i, c, want)
		}
	}
	if queries, _ := n.Stats(); queries != shards*perShard {
		t.Errorf("total queries = %d, want %d", queries, shards*perShard)
	}
	globalMu.Lock()
	defer globalMu.Unlock()
	if globalEvents != shards*perShard {
		t.Errorf("global tap saw %d events, want %d", globalEvents, shards*perShard)
	}
}
