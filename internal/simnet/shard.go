package simnet

import (
	"net/netip"
	"sync"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/faults"
)

// Shard is an isolated clock domain layered over a shared Network. Each
// shard owns its own logical clock, its own capture taps, and a private
// address overlay (typically just the shard's recursive resolver), while
// exchanges to everything else reach the servers registered on the shared
// network. Because every exchange advances only the shard's clock, the
// latencies and event timeline a shard observes are independent of how the
// Go scheduler interleaves goroutines — each shard's results depend only on
// its own query sequence, which keeps parallel audits deterministic.
//
// Shard implements Exchanger, so a resolver can be pointed at a shard
// exactly as it would be pointed at the Network, and it satisfies the
// resolver's Clock interface through Now.
type Shard struct {
	net *Network

	mu    sync.Mutex
	now   time.Duration
	taps  []Tap
	local map[netip.Addr]*serverEntry
	// client is the stub address of the in-flight stub→recursive exchange
	// on this shard, used to attribute the resolver's nested exchanges
	// (Event.Client). Shards are driven sequentially by their audit, so
	// one slot per shard suffices.
	client netip.Addr
	// faults holds this shard's per-link fault-injection state. Strictly
	// shard-private: plans installed on the network are never consulted
	// here, so each shard replays its own deterministic fault history
	// regardless of worker interleaving.
	faults map[netip.Addr]*faults.State
}

// swapClient installs addr as the shard's attribution client and returns
// the previous one.
func (s *Shard) swapClient(addr netip.Addr) netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.client
	s.client = addr
	return prev
}

// attributedClient resolves Event.Client for an exchange from src.
func (s *Shard) attributedClient(src netip.Addr) netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client.IsValid() {
		return s.client
	}
	return src
}

// NewShard creates a shard whose clock starts at the network's current
// time. The shard sees every server registered on the network plus any
// servers registered on the shard itself (which shadow same-address global
// registrations for exchanges originating in this shard).
func (n *Network) NewShard() *Shard {
	return &Shard{
		net:   n,
		now:   n.Now(),
		local: make(map[netip.Addr]*serverEntry),
	}
}

// Register places a shard-private server at addr, shadowing any global
// registration at the same address for this shard's exchanges. Sharded
// audits use it to give each worker its own recursive resolver at the
// canonical resolver address.
func (s *Shard) Register(addr netip.Addr, name string, role Role, latency time.Duration, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.local[addr] = &serverEntry{name: name, role: role, latency: latency, handler: h}
}

// AddTap attaches a capture tap to this shard's subsequent exchanges. Shard
// taps run before any global taps and only see this shard's traffic.
func (s *Shard) AddTap(tap Tap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.taps = append(s.taps, tap)
}

// Now returns the shard's current simulation time.
func (s *Shard) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the shard's clock forward.
func (s *Shard) Advance(d time.Duration) {
	s.mu.Lock()
	s.now += d
	s.mu.Unlock()
}

// Exchange routes a query like Network.Exchange but advances only the
// shard's clock, evaluates only the shard's fault plans, and feeds the
// shard's taps (then the network's global taps). Failure injection on
// shared servers — down flags and every-Nth loss — still applies and
// remains globally ordered, so loss-injection experiments should run
// sequentially (seeded fault plans, being shard-private, have no such
// restriction). It implements Exchanger.
func (s *Shard) Exchange(src, dst netip.Addr, q *dns.Message) (*dns.Message, error) {
	return exchangeOn(s, src, dst, q, false)
}

// admit resolves dst against the shard overlay first, then the shared
// network. Overlay servers skip failure injection (they are private to the
// shard); shared servers go through Network.admit so down/loss bookkeeping
// stays consistent.
func (s *Shard) admit(dst netip.Addr) (*serverEntry, error) {
	s.mu.Lock()
	entry, ok := s.local[dst]
	s.mu.Unlock()
	if ok {
		return entry, nil
	}
	return s.net.admit(dst)
}

// Network returns the shared network underneath the shard.
func (s *Shard) Network() *Network { return s.net }

var _ Exchanger = (*Shard)(nil)
