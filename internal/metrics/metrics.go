// Package metrics provides the small formatting and statistics toolkit the
// benchmark harness and cmd/dlvmeasure share: aligned text tables matching
// the paper's table layouts, text-rendered series for figures, and unit
// helpers (durations, megabytes, percentages).
package metrics

import (
	"fmt"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is a titled, aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - utf8.RuneCountInString(cell)
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one line of a figure: (x, y) pairs with a name.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a titled collection of series, rendered as columns of numbers
// (one x column, one y column per series) for plotting or eyeballing.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// String renders the figure as aligned data columns.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "# x=%s y=%s\n", f.XLabel, f.YLabel)
	t := Table{Header: []string{f.XLabel}}
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Name)
	}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []interface{}{trimFloat(f.Series[0].X[i])}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, trimFloat(s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			t.AddRow(row...)
		}
	}
	b.WriteString(t.String())
	return b.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Seconds formats a duration as decimal seconds, the unit of Table 5.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// Megabytes formats a byte count as decimal megabytes, the unit of Table 5.
func Megabytes(n int64) string {
	return fmt.Sprintf("%.2f", float64(n)/1e6)
}

// Percent formats a ratio as a percentage.
func Percent(ratio float64) string {
	return fmt.Sprintf("%.2f%%", ratio*100)
}

// Ratio formats an overhead ratio (extra/baseline) as a percentage, the
// Table 5 "Ratio" columns.
func Ratio(extra, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return Percent(extra / baseline)
}
