package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "Demo",
		Header: []string{"name", "count"},
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta-longer", 20000)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== Demo ==") {
		t.Fatalf("title: %q", lines[0])
	}
	// Columns align: the header and rows share the count column offset.
	hdrIdx := strings.Index(lines[1], "count")
	rowIdx := strings.Index(lines[3], "1")
	if hdrIdx != rowIdx {
		t.Fatalf("misaligned columns: header@%d value@%d\n%s", hdrIdx, rowIdx, out)
	}
	// Untitled table omits the banner.
	if strings.Contains((&Table{Header: []string{"a"}}).String(), "==") {
		t.Fatal("untitled table printed a banner")
	}
}

func TestFigureRendering(t *testing.T) {
	s1 := &Series{Name: "leaked"}
	s1.Add(100, 84)
	s1.Add(1000, 420)
	s2 := &Series{Name: "queries"}
	s2.Add(100, 100)
	s2.Add(1000, 510)
	fig := Figure{Title: "Fig. X", XLabel: "domains", YLabel: "count",
		Series: []*Series{s1, s2}}
	out := fig.String()
	for _, want := range []string{"Fig. X", "domains", "leaked", "queries", "84", "510"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Ragged series must not panic.
	short := &Series{Name: "short"}
	short.Add(100, 1)
	fig.Series = append(fig.Series, short)
	_ = fig.String()
}

func TestUnitFormatters(t *testing.T) {
	if got := Seconds(90 * time.Second); got != "90.00" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Megabytes(2_500_000); got != "2.50" {
		t.Errorf("Megabytes = %q", got)
	}
	if got := Percent(0.1868); got != "18.68%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Ratio(7.13, 38.16); got != "18.68%" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Errorf("Ratio/0 = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	if got := trimFloat(100); got != "100" {
		t.Errorf("trimFloat(100) = %q", got)
	}
	if got := trimFloat(0.125); got != "0.125" {
		t.Errorf("trimFloat(0.125) = %q", got)
	}
}
