package metrics

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a streaming log-bucketed latency histogram: constant memory
// regardless of sample count, ~3% relative quantile error. The serving-tier
// load generator records one per worker and merges them at the end, so the
// hot path needs no locking.
//
// Buckets are geometric: bucket i covers [min*growth^i, min*growth^(i+1)).
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	min    float64 // lower bound of bucket 0, in seconds
	growth float64
	logG   float64

	counts  []uint64
	count   uint64
	sum     float64 // seconds
	max     float64
	minSeen float64
}

// histBuckets spans 1µs..~5min at 5% growth (~400 buckets of 8 bytes).
const (
	histMin     = 1e-6
	histGrowth  = 1.05
	histBuckets = 400
)

// NewHistogram returns an empty latency histogram covering 1µs to ~5
// minutes with 5% bucket growth.
func NewHistogram() *Histogram {
	return &Histogram{
		min:    histMin,
		growth: histGrowth,
		logG:   math.Log(histGrowth),
		counts: make([]uint64, histBuckets),
	}
}

// bucket maps a sample in seconds to its bucket index, clamped to range.
func (h *Histogram) bucket(s float64) int {
	if s <= h.min {
		return 0
	}
	i := int(math.Log(s/h.min) / h.logG)
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) {
	s := d.Seconds()
	if s < 0 {
		s = 0
	}
	h.counts[h.bucket(s)]++
	h.count++
	h.sum += s
	if s > h.max {
		h.max = s
	}
	if h.count == 1 || s < h.minSeen {
		h.minSeen = s
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count) * float64(time.Second))
}

// Max returns the largest sample seen (exact, not bucketed).
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max * float64(time.Second))
}

// Min returns the smallest sample seen (exact, not bucketed).
func (h *Histogram) Min() time.Duration {
	return time.Duration(h.minSeen * float64(time.Second))
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper edge of the
// bucket holding the q*count-th sample — nearest-rank on buckets, biased
// at most one growth factor high. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			upper := h.min * math.Pow(h.growth, float64(i+1))
			if upper > h.max && h.max > 0 {
				upper = h.max
			}
			return time.Duration(upper * float64(time.Second))
		}
	}
	return h.Max()
}

// Merge folds o into h; both must come from NewHistogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.minSeen < h.minSeen {
		h.minSeen = o.minSeen
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Summary renders the histogram's headline percentiles on one line.
func (h *Histogram) Summary() string {
	if h.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s p999=%s max=%s",
		h.count, roundDur(h.Mean()), roundDur(h.Quantile(0.50)),
		roundDur(h.Quantile(0.95)), roundDur(h.Quantile(0.99)),
		roundDur(h.Quantile(0.999)), roundDur(h.Max()))
}

// roundDur trims a duration to 3 significant-ish digits for display.
func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
