package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		// Log-normal latencies centered near 2ms with a heavy tail.
		s := 0.002 * math.Exp(rng.NormFloat64())
		samples = append(samples, s)
		h.Record(time.Duration(s * float64(time.Second)))
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q).Seconds()
		// The bucket growth factor bounds the relative error.
		if got < exact/1.08 || got > exact*1.08 {
			t.Errorf("q=%.3f: histogram %.6fs vs exact %.6fs (>8%% off)", q, got, exact)
		}
	}
	if h.Count() != 50_000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		d := time.Duration(rng.Intn(20_000_000)) // up to 20ms
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%.2f: merged %s != whole %s", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Errorf("merged min/max %s/%s != whole %s/%s", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Errorf("merged mean %s != whole %s", a.Mean(), whole.Mean())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Summary() != "no samples" {
		t.Error("empty histogram should report zeros")
	}
	h.Record(0)                // below range: clamps to bucket 0
	h.Record(10 * time.Minute) // above range: clamps to the last bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 10*time.Minute {
		t.Errorf("max = %s (exact max should survive clamping)", h.Max())
	}
	// Quantile upper edges never exceed the observed max.
	if q := h.Quantile(1.0); q > 10*time.Minute {
		t.Errorf("p100 = %s > max", q)
	}
	mergedInto := NewHistogram()
	mergedInto.Merge(h)
	mergedInto.Merge(nil)
	if mergedInto.Count() != 2 {
		t.Errorf("merge count = %d", mergedInto.Count())
	}
}
