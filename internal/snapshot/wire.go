// Package snapshot implements the warm-state snapshot: a versioned,
// checksummed binary serialization of the sealed resolver.InfraCache plus
// the signed-zone signature state, written after core.WarmInfra seals and
// loaded back by a fleet member or a resumed sweep in milliseconds with
// zero re-signing.
//
// The wire layout follows the DLVT trace conventions
// (internal/dataset/traceio.go): a 4-byte magic, a version byte, then
// length-prefixed sections of uvarint/varint fields, with all DNS names
// factored into one front-coded name table (each name stores only the
// prefix length it shares with its predecessor plus the differing suffix).
// A crc64 trailer covers the whole file, so load is a validate-and-index
// pass over one contiguous buffer — no per-entry parsing surprises, no
// partial state on error.
//
// Every decode path is bounds-checked and returns an error; corrupted,
// truncated, or bit-flipped input must never panic or yield partial state
// (FuzzSnapshotDecode pins this).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"github.com/dnsprivacy/lookaside/internal/dns"
)

// Decode/refusal errors. Load wraps these so callers can distinguish "not a
// snapshot" from "a snapshot for a different world" when logging fallbacks.
var (
	// ErrMagic: the file does not start with the expected magic bytes.
	ErrMagic = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrVersion: the format version is not one this build understands.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum: the crc64 trailer does not match the file contents.
	ErrChecksum = errors.New("snapshot: checksum mismatch (file corrupted)")
	// ErrTruncated: the file ends before its declared contents do.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt: a structurally malformed section (bad name, bad varint,
	// out-of-range index, trailing garbage).
	ErrCorrupt = errors.New("snapshot: corrupt section")
	// ErrMismatch: a well-formed snapshot for a different universe,
	// resolver configuration, or zone generation — stale state that must
	// not be served.
	ErrMismatch = errors.New("snapshot: state mismatch")
)

// crcTable is the ECMA polynomial table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Enc accumulates one section's payload.
type Enc struct {
	buf []byte
}

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a signed (zigzag) varint.
func (e *Enc) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Builder assembles a snapshot-family file: magic, version, tagged
// length-prefixed sections, crc64 trailer. The sweep checkpoint reuses it
// with its own magic.
type Builder struct {
	magic   [4]byte
	version uint8
	tags    []uint32
	secs    []*Enc
}

// NewBuilder starts a file with the given magic and version.
func NewBuilder(magic [4]byte, version uint8) *Builder {
	return &Builder{magic: magic, version: version}
}

// Section starts a new tagged section and returns its payload encoder.
func (b *Builder) Section(tag uint32) *Enc {
	e := &Enc{}
	b.tags = append(b.tags, tag)
	b.secs = append(b.secs, e)
	return e
}

// Finish serializes the file.
func (b *Builder) Finish() []byte {
	size := 4 + 1 + binary.MaxVarintLen64
	for _, e := range b.secs {
		size += 2*binary.MaxVarintLen64 + len(e.buf)
	}
	out := make([]byte, 0, size+8)
	out = append(out, b.magic[:]...)
	out = append(out, b.version)
	out = binary.AppendUvarint(out, uint64(len(b.secs)))
	for i, e := range b.secs {
		out = binary.AppendUvarint(out, uint64(b.tags[i]))
		out = binary.AppendUvarint(out, uint64(len(e.buf)))
		out = append(out, e.buf...)
	}
	sum := crc64.Checksum(out, crcTable)
	out = binary.LittleEndian.AppendUint64(out, sum)
	return out
}

// section is one parsed section: a tag and a view into the file buffer.
type section struct {
	tag     uint32
	payload []byte
}

// Reader indexes a parsed file's sections.
type Reader struct {
	secs []section
}

// Parse validates the envelope of a snapshot-family file — magic, version,
// checksum, section framing — and indexes the sections. Payloads are views
// into data; nothing is copied or interpreted yet.
func Parse(data []byte, magic [4]byte, version uint8) (*Reader, error) {
	if len(data) < 4 {
		return nil, ErrTruncated
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrMagic
	}
	if len(data) < 4+1+8 {
		return nil, ErrTruncated
	}
	if data[4] != version {
		return nil, fmt.Errorf("%w: have %d, want %d", ErrVersion, data[4], version)
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(trailer) {
		return nil, ErrChecksum
	}
	d := &Dec{buf: body, off: 5}
	count, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: %d sections in %d bytes", ErrCorrupt, count, d.Remaining())
	}
	r := &Reader{secs: make([]section, 0, count)}
	for i := uint64(0); i < count; i++ {
		tag, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if tag > 1<<31 {
			return nil, fmt.Errorf("%w: section tag %d", ErrCorrupt, tag)
		}
		payload, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		r.secs = append(r.secs, section{tag: uint32(tag), payload: payload})
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return r, nil
}

// Section returns a decoder over the payload of the first section with the
// given tag; a missing section is an error (sections are not optional in
// any format built on this envelope).
func (r *Reader) Section(tag uint32) (*Dec, error) {
	for _, s := range r.secs {
		if s.tag == tag {
			return &Dec{buf: s.payload}, nil
		}
	}
	return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, tag)
}

// Dec decodes one section payload with full bounds checking.
type Dec struct {
	buf []byte
	off int
}

// Remaining returns the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

// Varint reads a signed varint.
func (d *Dec) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

// Count reads an element count that the following entries must account for
// at a minimum of one byte each — rejecting absurd counts before any
// allocation is sized from them.
func (d *Dec) Count() (int, error) {
	v, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(d.Remaining()) {
		return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, v, d.Remaining())
	}
	return int(v), nil
}

// Bytes reads a length-prefixed byte string as a view into the buffer.
func (d *Dec) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, ErrTruncated
	}
	p := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return p, nil
}

// String reads a length-prefixed string (copied out of the buffer).
func (d *Dec) String() (string, error) {
	p, err := d.Bytes()
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Done verifies the payload was consumed exactly.
func (d *Dec) Done() error {
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return nil
}

// NameTable interns every DNS name of a snapshot once; sections reference
// names by table index. Encoding is front-coded in insertion order: each
// name stores the byte length it shares with its predecessor plus the raw
// suffix. Exports insert in sorted order, so prefixes compress well without
// the decoder needing to re-sort anything.
type NameTable struct {
	names []dns.Name
	index map[dns.Name]uint64
}

// NewNameTable returns an empty table.
func NewNameTable() *NameTable {
	return &NameTable{index: make(map[dns.Name]uint64)}
}

// Ref interns n and returns its table index.
func (t *NameTable) Ref(n dns.Name) uint64 {
	if i, ok := t.index[n]; ok {
		return i
	}
	i := uint64(len(t.names))
	t.names = append(t.names, n)
	t.index[n] = i
	return i
}

// Encode writes the table as one section payload.
func (t *NameTable) Encode(e *Enc) {
	e.Uvarint(uint64(len(t.names)))
	prev := ""
	for _, n := range t.names {
		s := string(n)
		shared := 0
		for shared < len(prev) && shared < len(s) && prev[shared] == s[shared] {
			shared++
		}
		e.Uvarint(uint64(shared))
		e.String(s[shared:])
		prev = s
	}
}

// DecodeNames reads a front-coded name table, validating that every entry
// is a canonical DNS name (lowercase, trailing dot, legal labels) — the
// names feed map keys across the resolver, so a corrupted table must be
// refused here, not discovered at lookup time.
func DecodeNames(d *Dec) ([]dns.Name, error) {
	count, err := d.Count()
	if err != nil {
		return nil, err
	}
	names := make([]dns.Name, 0, count)
	prev := ""
	for i := 0; i < count; i++ {
		shared, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if shared > uint64(len(prev)) {
			return nil, fmt.Errorf("%w: name %d shares %d bytes of a %d-byte predecessor",
				ErrCorrupt, i, shared, len(prev))
		}
		suffix, err := d.String()
		if err != nil {
			return nil, err
		}
		s := prev[:shared] + suffix
		canon, err := dns.MakeName(s)
		if err != nil {
			return nil, fmt.Errorf("%w: name %d: %v", ErrCorrupt, i, err)
		}
		if string(canon) != s {
			return nil, fmt.Errorf("%w: name %d %q is not canonical", ErrCorrupt, i, s)
		}
		names = append(names, canon)
		prev = s
	}
	return names, nil
}

// NameAt resolves a decoded name reference, rejecting out-of-range indexes.
func NameAt(names []dns.Name, ref uint64) (dns.Name, error) {
	if ref >= uint64(len(names)) {
		return "", fmt.Errorf("%w: name ref %d of %d", ErrCorrupt, ref, len(names))
	}
	return names[ref], nil
}
