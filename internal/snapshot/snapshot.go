package snapshot

import (
	"fmt"
	"math"
	"net/netip"
	"os"
	"path/filepath"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/resolver"
	"github.com/dnsprivacy/lookaside/internal/universe"
	"github.com/dnsprivacy/lookaside/internal/zone"
)

// Magic and Version identify a warm-state snapshot file.
var Magic = [4]byte{'D', 'L', 'V', 'S'}

// Version is the current format version; Parse refuses any other.
const Version = 1

// Section tags.
const (
	secMeta     = 1 // universe + config fingerprints
	secNames    = 2 // front-coded name table
	secDeleg    = 3 // shared delegations
	secOutcomes = 4 // per-zone validation outcomes
	secSpans    = 5 // validated NSEC span stores
	secZoneSig  = 6 // per-zone memoized RRSIGs + generation pins
)

// State is a fully decoded snapshot, not yet bound to a universe. Decode
// produces it from bytes (pure parsing — fuzzable without a universe);
// Install verifies it against a live universe and configuration before any
// of it becomes visible.
type State struct {
	// UniverseFP and ConfigFP pin the world the state was warmed under.
	UniverseFP string
	ConfigFP   string
	// Infra is the exported infrastructure cache.
	Infra *resolver.InfraState
	// ZoneSigs carries each signed infrastructure zone's memoized
	// signatures, generation-pinned.
	ZoneSigs []*zone.SigState
}

// Capture assembles the warm state of a universe: the sealed infrastructure
// cache plus every signed infrastructure zone's signature state.
func Capture(u *universe.Universe, cfg resolver.Config, ic *resolver.InfraCache) (*State, error) {
	infra, err := ic.Export()
	if err != nil {
		return nil, err
	}
	st := &State{
		UniverseFP: u.Fingerprint(),
		ConfigFP:   cfg.WarmFingerprint(),
		Infra:      infra,
	}
	for _, z := range u.InfraZones() {
		if sig := z.ExportSigState(); sig != nil {
			st.ZoneSigs = append(st.ZoneSigs, sig)
		}
	}
	return st, nil
}

// Encode serializes a state to snapshot bytes.
func Encode(st *State) []byte {
	b := NewBuilder(Magic, Version)
	nt := NewNameTable()

	meta := b.Section(secMeta)
	meta.String(st.UniverseFP)
	meta.String(st.ConfigFP)

	names := b.Section(secNames) // filled last, once every ref is interned

	deleg := b.Section(secDeleg)
	deleg.Uvarint(uint64(len(st.Infra.Delegations)))
	for _, d := range st.Infra.Delegations {
		deleg.Uvarint(nt.Ref(d.Name))
		deleg.Uvarint(nt.Ref(d.Parent))
		deleg.Uvarint(uint64(len(d.Servers)))
		for _, s := range d.Servers {
			deleg.Uvarint(nt.Ref(s.Name))
			deleg.Bytes(encodeAddr(s.Addr))
		}
	}

	outc := b.Section(secOutcomes)
	outc.Uvarint(uint64(len(st.Infra.Outcomes)))
	for _, o := range st.Infra.Outcomes {
		outc.Uvarint(nt.Ref(o.Name))
		outc.Uvarint(uint64(o.Status))
		var flags uint64
		if o.Signed {
			flags |= 1
		}
		if o.ViaDLV {
			flags |= 2
		}
		outc.Uvarint(flags)
		outc.Uvarint(uint64(len(o.Keys)))
		for _, k := range o.Keys {
			outc.Uvarint(uint64(k.Flags))
			outc.Uvarint(uint64(k.Protocol))
			outc.Uvarint(uint64(k.Algorithm))
			outc.Bytes(k.PublicKey)
		}
	}

	spans := b.Section(secSpans)
	spans.Uvarint(uint64(len(st.Infra.Spans)))
	for _, set := range st.Infra.Spans {
		spans.Uvarint(nt.Ref(set.Zone))
		spans.Uvarint(uint64(set.Limit))
		spans.Uvarint(uint64(len(set.Spans)))
		for _, sp := range set.Spans {
			spans.Uvarint(nt.Ref(sp.Owner))
			spans.Uvarint(nt.Ref(sp.Next))
			spans.Uvarint(uint64(sp.Expires))
		}
	}

	zsig := b.Section(secZoneSig)
	zsig.Uvarint(uint64(len(st.ZoneSigs)))
	for _, zs := range st.ZoneSigs {
		zsig.Uvarint(nt.Ref(zs.Apex))
		zsig.Uvarint(zs.Generation)
		zsig.Uvarint(uint64(len(zs.Entries)))
		for _, e := range zs.Entries {
			data := e.Sig.Data.(*dns.RRSIGData)
			zsig.Uvarint(nt.Ref(e.Key.Name))
			zsig.Uvarint(uint64(e.Key.Type))
			zsig.Uvarint(uint64(e.Key.Class))
			zsig.Uvarint(uint64(e.Sig.TTL))
			zsig.Uvarint(uint64(data.TypeCovered))
			zsig.Uvarint(uint64(data.Algorithm))
			zsig.Uvarint(uint64(data.Labels))
			zsig.Uvarint(uint64(data.OriginalTTL))
			zsig.Uvarint(uint64(data.Expiration))
			zsig.Uvarint(uint64(data.Inception))
			zsig.Uvarint(uint64(data.KeyTag))
			zsig.Uvarint(nt.Ref(data.SignerName))
			zsig.Bytes(data.Signature)
		}
	}

	nt.Encode(names)
	return b.Finish()
}

// Decode parses snapshot bytes into a State. It is a pure function of the
// input: no universe required, nothing installed, and malformed input of
// any kind — truncation, corruption, bit flips — returns an error without
// panicking (FuzzSnapshotDecode pins this).
func Decode(data []byte) (*State, error) {
	r, err := Parse(data, Magic, Version)
	if err != nil {
		return nil, err
	}

	meta, err := r.Section(secMeta)
	if err != nil {
		return nil, err
	}
	st := &State{Infra: &resolver.InfraState{}}
	if st.UniverseFP, err = meta.String(); err != nil {
		return nil, err
	}
	if st.ConfigFP, err = meta.String(); err != nil {
		return nil, err
	}
	if err := meta.Done(); err != nil {
		return nil, err
	}

	nsec, err := r.Section(secNames)
	if err != nil {
		return nil, err
	}
	names, err := DecodeNames(nsec)
	if err != nil {
		return nil, err
	}
	if err := nsec.Done(); err != nil {
		return nil, err
	}
	name := func(d *Dec) (dns.Name, error) {
		ref, err := d.Uvarint()
		if err != nil {
			return "", err
		}
		return NameAt(names, ref)
	}

	deleg, err := r.Section(secDeleg)
	if err != nil {
		return nil, err
	}
	n, err := deleg.Count()
	if err != nil {
		return nil, err
	}
	// Allocation mirrors the exporters' nil conventions (nil when empty,
	// allocated otherwise), so Decode(Encode(st)) is DeepEqual to st.
	if n > 0 {
		st.Infra.Delegations = make([]resolver.InfraDelegation, 0, n)
	}
	for i := 0; i < n; i++ {
		var d resolver.InfraDelegation
		if d.Name, err = name(deleg); err != nil {
			return nil, err
		}
		if d.Parent, err = name(deleg); err != nil {
			return nil, err
		}
		ns, err := deleg.Count()
		if err != nil {
			return nil, err
		}
		d.Servers = make([]resolver.InfraServer, 0, ns)
		for j := 0; j < ns; j++ {
			var s resolver.InfraServer
			if s.Name, err = name(deleg); err != nil {
				return nil, err
			}
			raw, err := deleg.Bytes()
			if err != nil {
				return nil, err
			}
			if s.Addr, err = decodeAddr(raw); err != nil {
				return nil, err
			}
			d.Servers = append(d.Servers, s)
		}
		st.Infra.Delegations = append(st.Infra.Delegations, d)
	}
	if err := deleg.Done(); err != nil {
		return nil, err
	}

	outc, err := r.Section(secOutcomes)
	if err != nil {
		return nil, err
	}
	if n, err = outc.Count(); err != nil {
		return nil, err
	}
	if n > 0 {
		st.Infra.Outcomes = make([]resolver.InfraOutcome, 0, n)
	}
	for i := 0; i < n; i++ {
		var o resolver.InfraOutcome
		if o.Name, err = name(outc); err != nil {
			return nil, err
		}
		status, err := outc.Uvarint()
		if err != nil {
			return nil, err
		}
		o.Status = resolver.ValidationStatus(status)
		flags, err := outc.Uvarint()
		if err != nil {
			return nil, err
		}
		if flags > 3 {
			return nil, fmt.Errorf("%w: outcome flags %#x", ErrCorrupt, flags)
		}
		o.Signed = flags&1 != 0
		o.ViaDLV = flags&2 != 0
		nk, err := outc.Count()
		if err != nil {
			return nil, err
		}
		if nk > 0 {
			o.Keys = make([]*dns.DNSKEYData, 0, nk)
		}
		for j := 0; j < nk; j++ {
			k := &dns.DNSKEYData{}
			fields := [3]uint64{}
			for f := range fields {
				if fields[f], err = outc.Uvarint(); err != nil {
					return nil, err
				}
			}
			if fields[0] > math.MaxUint16 || fields[1] > math.MaxUint8 || fields[2] > math.MaxUint8 {
				return nil, fmt.Errorf("%w: DNSKEY field overflow", ErrCorrupt)
			}
			k.Flags = uint16(fields[0])
			k.Protocol = uint8(fields[1])
			k.Algorithm = uint8(fields[2])
			raw, err := outc.Bytes()
			if err != nil {
				return nil, err
			}
			k.PublicKey = append([]byte(nil), raw...)
			o.Keys = append(o.Keys, k)
		}
		st.Infra.Outcomes = append(st.Infra.Outcomes, o)
	}
	if err := outc.Done(); err != nil {
		return nil, err
	}

	spans, err := r.Section(secSpans)
	if err != nil {
		return nil, err
	}
	if n, err = spans.Count(); err != nil {
		return nil, err
	}
	if n > 0 {
		st.Infra.Spans = make([]resolver.InfraSpanSet, 0, n)
	}
	for i := 0; i < n; i++ {
		var set resolver.InfraSpanSet
		if set.Zone, err = name(spans); err != nil {
			return nil, err
		}
		limit, err := spans.Uvarint()
		if err != nil {
			return nil, err
		}
		if limit > math.MaxInt32 {
			return nil, fmt.Errorf("%w: span limit %d", ErrCorrupt, limit)
		}
		set.Limit = int(limit)
		ns, err := spans.Count()
		if err != nil {
			return nil, err
		}
		set.Spans = make([]resolver.InfraSpan, 0, ns)
		for j := 0; j < ns; j++ {
			var sp resolver.InfraSpan
			if sp.Owner, err = name(spans); err != nil {
				return nil, err
			}
			if sp.Next, err = name(spans); err != nil {
				return nil, err
			}
			exp, err := spans.Uvarint()
			if err != nil {
				return nil, err
			}
			if exp > math.MaxUint32 {
				return nil, fmt.Errorf("%w: span expiry %d", ErrCorrupt, exp)
			}
			sp.Expires = uint32(exp)
			set.Spans = append(set.Spans, sp)
		}
		st.Infra.Spans = append(st.Infra.Spans, set)
	}
	if err := spans.Done(); err != nil {
		return nil, err
	}

	zsig, err := r.Section(secZoneSig)
	if err != nil {
		return nil, err
	}
	if n, err = zsig.Count(); err != nil {
		return nil, err
	}
	if n > 0 {
		st.ZoneSigs = make([]*zone.SigState, 0, n)
	}
	for i := 0; i < n; i++ {
		zs := &zone.SigState{}
		if zs.Apex, err = name(zsig); err != nil {
			return nil, err
		}
		if zs.Generation, err = zsig.Uvarint(); err != nil {
			return nil, err
		}
		ne, err := zsig.Count()
		if err != nil {
			return nil, err
		}
		zs.Entries = make([]zone.SigEntry, 0, ne)
		for j := 0; j < ne; j++ {
			e, err := decodeSigEntry(zsig, name)
			if err != nil {
				return nil, err
			}
			zs.Entries = append(zs.Entries, e)
		}
		st.ZoneSigs = append(st.ZoneSigs, zs)
	}
	if err := zsig.Done(); err != nil {
		return nil, err
	}
	return st, nil
}

// decodeSigEntry reads one memoized signature.
func decodeSigEntry(d *Dec, name func(*Dec) (dns.Name, error)) (zone.SigEntry, error) {
	var e zone.SigEntry
	var err error
	if e.Key.Name, err = name(d); err != nil {
		return e, err
	}
	// Key type/class, RR TTL, then the RRSIG payload fields in order:
	// covered type, algorithm, labels, original TTL, expiration, inception,
	// key tag — each bounded by its wire width.
	fields := [9]uint64{}
	bounds := [9]uint64{
		math.MaxUint16, math.MaxUint16, math.MaxUint32,
		math.MaxUint16, math.MaxUint8, math.MaxUint8,
		math.MaxUint32, math.MaxUint32, math.MaxUint32,
	}
	for f := range fields {
		if fields[f], err = d.Uvarint(); err != nil {
			return e, err
		}
		if fields[f] > bounds[f] {
			return e, fmt.Errorf("%w: RRSIG field %d overflow (%d)", ErrCorrupt, f, fields[f])
		}
	}
	keyTag, err := d.Uvarint()
	if err != nil {
		return e, err
	}
	if keyTag > math.MaxUint16 {
		return e, fmt.Errorf("%w: RRSIG key tag %d", ErrCorrupt, keyTag)
	}
	signer, err := name(d)
	if err != nil {
		return e, err
	}
	sig, err := d.Bytes()
	if err != nil {
		return e, err
	}
	e.Key.Type = dns.Type(fields[0])
	e.Key.Class = dns.Class(fields[1])
	e.Sig = dns.RR{
		Name: e.Key.Name, Type: dns.TypeRRSIG,
		Class: e.Key.Class, TTL: uint32(fields[2]),
		Data: &dns.RRSIGData{
			TypeCovered: dns.Type(fields[3]),
			Algorithm:   uint8(fields[4]),
			Labels:      uint8(fields[5]),
			OriginalTTL: uint32(fields[6]),
			Expiration:  uint32(fields[7]),
			Inception:   uint32(fields[8]),
			KeyTag:      uint16(keyTag),
			SignerName:  signer,
			Signature:   append([]byte(nil), sig...),
		},
	}
	return e, nil
}

// encodeAddr serializes a netip.Addr: empty for the zero value (a glueless
// server), else the 4- or 16-byte address.
func encodeAddr(a netip.Addr) []byte {
	if !a.IsValid() {
		return nil
	}
	raw, _ := a.MarshalBinary()
	return raw
}

// decodeAddr inverts encodeAddr, rejecting lengths that are not an address.
func decodeAddr(raw []byte) (netip.Addr, error) {
	if len(raw) == 0 {
		return netip.Addr{}, nil
	}
	a, ok := netip.AddrFromSlice(raw)
	if !ok {
		return netip.Addr{}, fmt.Errorf("%w: %d-byte address", ErrCorrupt, len(raw))
	}
	return a, nil
}

// Install verifies a decoded state against the live universe and resolver
// configuration, then makes it real: a sealed InfraCache is rebuilt and
// every signed infrastructure zone gets its memoized signatures back. All
// checks — both fingerprints, the zone set, and every per-zone generation —
// run before anything is installed, so a refused snapshot leaves the
// universe untouched.
func Install(st *State, u *universe.Universe, cfg resolver.Config) (*resolver.InfraCache, error) {
	if fp := u.Fingerprint(); st.UniverseFP != fp {
		return nil, fmt.Errorf("%w: universe %q, snapshot built for %q", ErrMismatch, fp, st.UniverseFP)
	}
	if fp := cfg.WarmFingerprint(); st.ConfigFP != fp {
		return nil, fmt.Errorf("%w: resolver config %q, snapshot built for %q", ErrMismatch, fp, st.ConfigFP)
	}
	zones := make(map[dns.Name]*zone.Zone)
	signedCount := 0
	for _, z := range u.InfraZones() {
		zones[z.Apex()] = z
		if z.IsSigned() {
			signedCount++
		}
	}
	if len(st.ZoneSigs) != signedCount {
		return nil, fmt.Errorf("%w: snapshot carries %d signed zones, universe has %d",
			ErrMismatch, len(st.ZoneSigs), signedCount)
	}
	for _, zs := range st.ZoneSigs {
		z, ok := zones[zs.Apex]
		if !ok {
			return nil, fmt.Errorf("%w: snapshot zone %s not in universe", ErrMismatch, zs.Apex)
		}
		if !z.IsSigned() {
			return nil, fmt.Errorf("%w: snapshot zone %s unsigned in universe", ErrMismatch, zs.Apex)
		}
		if gen := z.Generation(); zs.Generation != gen {
			return nil, fmt.Errorf("%w: zone %s at generation %d, snapshot at %d (stale)",
				ErrMismatch, zs.Apex, gen, zs.Generation)
		}
	}
	ic, err := resolver.RestoreInfra(st.Infra)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for _, zs := range st.ZoneSigs {
		if err := zones[zs.Apex].ImportSigState(zs); err != nil {
			// Apex and generation were pre-checked; what remains is a
			// structurally unsound entry.
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return ic, nil
}

// Save captures the warm state and writes it atomically (temp file + rename
// in the destination directory), so a crashed save never leaves a torn file
// where a later boot would look for a snapshot.
func Save(path string, u *universe.Universe, cfg resolver.Config, ic *resolver.InfraCache) error {
	st, err := Capture(u, cfg, ic)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, Encode(st))
}

// Load reads, decodes, verifies, and installs a snapshot, returning the
// restored sealed InfraCache. Any failure — unreadable file, bad envelope,
// corrupt section, fingerprint or generation mismatch — returns an error
// with nothing installed; callers fall back to a live warm-up.
func Load(path string, u *universe.Universe, cfg resolver.Config) (*resolver.InfraCache, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return Install(st, u, cfg)
}

// WriteFileAtomic writes data to path via a temp file and rename.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
