package snapshot_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/dnsprivacy/lookaside/internal/core"
	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/resolver"
	"github.com/dnsprivacy/lookaside/internal/snapshot"
	"github.com/dnsprivacy/lookaside/internal/universe"
)

// buildWarm constructs a small universe and warms its shared infrastructure
// cache, the state every snapshot test captures.
func buildWarm(t *testing.T, seed int64) (*universe.Universe, resolver.Config, *resolver.InfraCache) {
	t.Helper()
	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: 200, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: seed, Population: pop, Extra: dataset.SecureDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := u.ResolverConfig(true, true)
	cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0
	ic, err := core.WarmInfra(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u, cfg, ic
}

// TestSnapshotRoundTrip pins the format: Capture → Encode → Decode loses
// nothing, re-encoding a decoded state is byte-identical (deterministic
// bytes), and Install rebuilds a sealed cache whose export matches the
// original exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	u, cfg, ic := buildWarm(t, 3)
	st, err := snapshot.Capture(u, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Infra.Delegations) == 0 || len(st.Infra.Outcomes) == 0 {
		t.Fatalf("captured state is empty: %d delegations, %d outcomes",
			len(st.Infra.Delegations), len(st.Infra.Outcomes))
	}
	if len(st.ZoneSigs) == 0 {
		t.Fatal("captured state carries no signed-zone signatures")
	}

	data := snapshot.Encode(st)
	got, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Error("decoded state differs from captured state")
	}
	if again := snapshot.Encode(got); !bytes.Equal(data, again) {
		t.Error("re-encoding a decoded state is not byte-identical")
	}

	ic2, err := snapshot.Install(got, u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ic2.Sealed() {
		t.Fatal("Install returned an unsealed cache")
	}
	exp1, err := ic.Export()
	if err != nil {
		t.Fatal(err)
	}
	exp2, err := ic2.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exp1, exp2) {
		t.Error("restored cache exports differently than the warmed original")
	}
}

// TestSnapshotSaveLoad exercises the file path: Save writes atomically, Load
// returns a sealed cache, and a missing file is an error (the caller falls
// back to a live warm-up).
func TestSnapshotSaveLoad(t *testing.T) {
	u, cfg, ic := buildWarm(t, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "warm.snap")
	if err := snapshot.Save(path, u, cfg, ic); err != nil {
		t.Fatal(err)
	}
	ic2, err := snapshot.Load(path, u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, z1, s1 := ic.Sizes()
	d2, z2, s2 := ic2.Sizes()
	if d1 != d2 || z1 != z2 || s1 != s2 {
		t.Errorf("loaded sizes (%d, %d, %d) != warmed sizes (%d, %d, %d)",
			d2, z2, s2, d1, z1, s1)
	}
	// Atomic write leaves no temp debris next to the snapshot.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("snapshot dir holds %d entries, want only the snapshot", len(entries))
	}
	if _, err := snapshot.Load(filepath.Join(dir, "missing.snap"), u, cfg); err == nil {
		t.Error("loading a missing snapshot succeeded")
	}
}

// TestSnapshotEnvelopeRefusals pins the refusal taxonomy of the envelope:
// wrong magic, wrong version, flipped payload bits, truncation, and trailing
// garbage each fail with the right sentinel and never a partial state.
func TestSnapshotEnvelopeRefusals(t *testing.T) {
	u, cfg, ic := buildWarm(t, 5)
	st, err := snapshot.Capture(u, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}
	data := snapshot.Encode(st)

	check := func(name string, mut func([]byte) []byte, want error) {
		t.Helper()
		b := mut(append([]byte(nil), data...))
		got, err := snapshot.Decode(b)
		if err == nil {
			t.Errorf("%s: Decode succeeded", name)
			return
		}
		if got != nil {
			t.Errorf("%s: Decode returned partial state alongside error", name)
		}
		if want != nil && !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, snapshot.ErrMagic)
	check("bad version", func(b []byte) []byte { b[4] = 0x7F; return b }, snapshot.ErrVersion)
	check("payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }, snapshot.ErrChecksum)
	check("trailer bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, snapshot.ErrChecksum)
	check("short prefix", func(b []byte) []byte { return b[:3] }, snapshot.ErrTruncated)
	check("trailing garbage", func(b []byte) []byte { return append(b, 0xAA) }, nil)
	// Every truncation point must error, never panic or half-parse.
	for i := 0; i < len(data); i++ {
		if _, err := snapshot.Decode(data[:i]); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded successfully", i, len(data))
		}
	}
}

// TestSnapshotInstallRefusals pins the staleness checks: a snapshot built
// for a different universe, a different resolver configuration, a mutated
// (regenerated) zone, or a different zone set is refused with ErrMismatch —
// and a refused Install leaves the universe untouched.
func TestSnapshotInstallRefusals(t *testing.T) {
	u, cfg, ic := buildWarm(t, 6)
	st, err := snapshot.Capture(u, cfg, ic)
	if err != nil {
		t.Fatal(err)
	}

	wantMismatch := func(name string, err error, frag string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: Install succeeded", name)
			return
		}
		if !errors.Is(err, snapshot.ErrMismatch) {
			t.Errorf("%s: err = %v, want ErrMismatch", name, err)
		}
		if frag != "" && !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: err %q does not mention %q", name, err, frag)
		}
	}

	// Different universe (seed changes the fingerprint).
	u2, _, _ := buildWarm(t, 7)
	gens := map[dns.Name]uint64{}
	for _, z := range u2.InfraZones() {
		gens[z.Apex()] = z.Generation()
	}
	_, err = snapshot.Install(st, u2, cfg)
	wantMismatch("universe", err, "universe")
	for _, z := range u2.InfraZones() {
		if z.Generation() != gens[z.Apex()] {
			t.Errorf("refused Install mutated zone %s", z.Apex())
		}
	}

	// Different resolver configuration.
	cfg2 := cfg
	cfg2.QNameMinimization = !cfg2.QNameMinimization
	_, err = snapshot.Install(st, u, cfg2)
	wantMismatch("config", err, "config")

	// Fewer signed zones than the universe has.
	short := *st
	short.ZoneSigs = st.ZoneSigs[:len(st.ZoneSigs)-1]
	_, err = snapshot.Install(&short, u, cfg)
	wantMismatch("zone set", err, "signed zones")

	// A zone mutated since capture: its generation moved, the memoized
	// signatures no longer describe it. (Mutate last — it poisons u for
	// any later Install.)
	var mutated *dns.Name
	for _, z := range u.InfraZones() {
		if !z.IsSigned() {
			continue
		}
		child, err := dns.Concat("stale-probe", z.Apex())
		if err != nil {
			t.Fatal(err)
		}
		if err := z.Add(dns.RR{
			Name: child, Type: dns.TypeTXT, Class: dns.ClassIN,
			Data: &dns.TXTData{Strings: []string{"bump"}},
		}); err != nil {
			t.Fatal(err)
		}
		apex := z.Apex()
		mutated = &apex
		break
	}
	if mutated == nil {
		t.Fatal("universe has no signed infrastructure zone")
	}
	_, err = snapshot.Install(st, u, cfg)
	wantMismatch("stale generation", err, "stale")
}

// TestWriteFileAtomic pins overwrite semantics: the rename replaces the
// previous file and a reader never sees a torn write.
func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := snapshot.WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Errorf("content = %q, want %q", got, "two")
	}
}
