package snapshot_test

import (
	"net/netip"
	"reflect"
	"testing"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/resolver"
	"github.com/dnsprivacy/lookaside/internal/snapshot"
	"github.com/dnsprivacy/lookaside/internal/zone"
)

// fuzzSeedState hand-builds a small but fully populated state — every
// section kind, glue and glueless servers, keys, spans, memoized RRSIGs —
// without the cost of constructing a universe, so the fuzz seed corpus
// exercises every decode path from the first execution.
func fuzzSeedState() *snapshot.State {
	mk := dns.MustName
	return &snapshot.State{
		UniverseFP: "seed=1 domains=2",
		ConfigFP:   "validation=true",
		Infra: &resolver.InfraState{
			Delegations: []resolver.InfraDelegation{{
				Name: mk("com."), Parent: dns.Root,
				Servers: []resolver.InfraServer{
					{Name: mk("ns1.com."), Addr: netip.MustParseAddr("192.0.2.1")},
					{Name: mk("ns2.com.")}, // glueless: zero address
				},
			}},
			Outcomes: []resolver.InfraOutcome{{
				Name: mk("com."), Status: resolver.StatusSecure, Signed: true,
				Keys: []*dns.DNSKEYData{{
					Flags: 257, Protocol: 3, Algorithm: 13,
					PublicKey: []byte{1, 2, 3, 4},
				}},
			}},
			Spans: []resolver.InfraSpanSet{{
				Zone: mk("com."), Limit: 4096,
				Spans: []resolver.InfraSpan{
					{Owner: mk("a.com."), Next: mk("m.com."), Expires: 1000},
					{Owner: mk("m.com."), Next: mk("z.com."), Expires: 2000},
				},
			}},
		},
		ZoneSigs: []*zone.SigState{{
			Apex: mk("com."), Generation: 7,
			Entries: []zone.SigEntry{{
				Key: dns.Key{Name: mk("www.com."), Type: dns.TypeA, Class: dns.ClassIN},
				Sig: dns.RR{
					Name: mk("www.com."), Type: dns.TypeRRSIG, Class: dns.ClassIN, TTL: 300,
					Data: &dns.RRSIGData{
						TypeCovered: dns.TypeA, Algorithm: 13, Labels: 2,
						OriginalTTL: 300, Expiration: 5000, Inception: 1000,
						KeyTag: 42, SignerName: mk("com."),
						Signature: []byte{9, 8, 7},
					},
				},
			}},
		}},
	}
}

// FuzzSnapshotDecode pins the fuzz-safety contract of the snapshot format:
// Decode of arbitrary bytes — truncated, corrupted, bit-flipped — either
// succeeds or returns an error; it never panics and never returns a state
// alongside an error. Whatever it accepts must survive a re-encode round
// trip unchanged, so a fuzz-found "valid" input cannot smuggle in a state
// the encoder could not have produced semantically.
func FuzzSnapshotDecode(f *testing.F) {
	valid := snapshot.Encode(fuzzSeedState())
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DLVS"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0xAA))
	for i := 1; i < len(valid); i += 13 {
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := snapshot.Decode(data)
		if err != nil {
			if st != nil {
				t.Fatal("Decode returned a state alongside an error")
			}
			return
		}
		again, err := snapshot.Decode(snapshot.Encode(st))
		if err != nil {
			t.Fatalf("re-decoding an accepted state failed: %v", err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatal("accepted state does not round-trip")
		}
	})
}
