package faults

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		if b.Failure(now) {
			t.Fatalf("breaker opened after %d failures (threshold 3)", i+1)
		}
	}
	if !b.Allow(now) {
		t.Fatal("breaker rejected below threshold")
	}
	if !b.Failure(now) {
		t.Fatal("third failure did not open the circuit")
	}
	if b.State(now) != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State(now))
	}
	if b.Allow(now) || b.Allow(now + 59*time.Second) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Skips() != 2 {
		t.Fatalf("skips = %d, want 2", b.Skips())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	b.Allow(0)
	b.Failure(0) // opens
	probeAt := 61 * time.Second
	if b.State(probeAt) != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", b.State(probeAt))
	}
	if !b.Allow(probeAt) {
		t.Fatal("half-open breaker rejected the probe")
	}
	// While the probe is outstanding, nothing else passes.
	if b.Allow(probeAt) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: circuit re-opens and the cooldown restarts from now.
	if !b.Failure(probeAt) {
		t.Fatal("failed probe did not re-open")
	}
	if b.Allow(probeAt + 30*time.Second) {
		t.Fatal("re-opened breaker admitted inside restarted cooldown")
	}
	// Next probe succeeds: circuit closes fully.
	healAt := probeAt + 61*time.Second
	if !b.Allow(healAt) {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State(healAt) != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", b.State(healAt))
	}
	for i := 0; i < 10; i++ {
		if !b.Allow(healAt) {
			t.Fatal("closed breaker rejecting after recovery")
		}
		b.Success()
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 10; i++ {
		b.Allow(0)
		b.Failure(0)
		b.Allow(0)
		b.Failure(0)
		b.Allow(0)
		b.Success() // interleaved success: never 3 consecutive failures
	}
	if b.State(0) != BreakerClosed || b.Opens() != 0 {
		t.Fatalf("state = %s opens = %d, want closed/0", b.State(0), b.Opens())
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 5; i++ {
		b.Allow(0)
		b.Failure(0)
	}
	if b.State(0) != BreakerOpen {
		t.Fatal("default threshold is not 5")
	}
	if b.State(59*time.Second) != BreakerOpen || b.State(60*time.Second) != BreakerHalfOpen {
		t.Fatal("default cooldown is not 60s")
	}
}
