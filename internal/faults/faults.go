// Package faults provides deterministic, seeded fault injection for the
// simulated network, plus the resilience primitives built on top of it
// (transient-error classification and a circuit breaker).
//
// A Plan is an immutable, reproducible fault schedule for one link or
// server: probabilistic loss, latency jitter and spikes, outage (flap)
// windows over simulated time, forced truncation, response corruption, and
// byzantine registry behaviors. A State evaluates a plan one exchange at a
// time; every draw is a pure function of (seed, exchange ordinal), and
// outage windows are checked against the caller's logical clock, so a run
// is byte-reproducible regardless of wall time, scheduling, or worker
// count — each clock domain (the global network or one shard) owns its own
// State and therefore its own deterministic fault history.
package faults

import (
	"errors"
	"time"
)

// Mode selects a byzantine server behavior: the server answers, but the
// answers are adversarial or broken, modeling a look-aside registry that
// misbehaves rather than disappears.
type Mode int

// Byzantine modes.
const (
	// ByzNone answers faithfully.
	ByzNone Mode = iota
	// ByzServFail answers every affected query with SERVFAIL (the storm a
	// dying registry emits).
	ByzServFail
	// ByzBogusSig corrupts RRSIG signature bytes in affected responses
	// (stale or bogus signatures: records present, verification fails).
	ByzBogusSig
	// ByzWrongDenial strips denial-of-existence proofs from negative
	// responses and flattens NXDOMAIN to an unproven empty answer, so
	// aggressive negative caching can never engage.
	ByzWrongDenial
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ByzNone:
		return "none"
	case ByzServFail:
		return "servfail"
	case ByzBogusSig:
		return "bogus-sig"
	case ByzWrongDenial:
		return "wrong-denial"
	default:
		return "unknown"
	}
}

// Window is a half-open interval [Start, End) of simulated time during
// which the server is unreachable.
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

// Plan is a seeded, reproducible fault schedule for one link or server.
// The zero value injects nothing. Rates are probabilities in [0, 1] and
// are clamped on evaluation.
type Plan struct {
	// Seed drives every probabilistic draw; two States over the same plan
	// produce identical decision sequences.
	Seed int64

	// LossRate drops this share of exchanges (sent, then lost: the sender
	// pays a timeout).
	LossRate float64

	// JitterMax adds a uniform [0, JitterMax) latency to each exchange.
	JitterMax time.Duration
	// SpikeRate adds SpikeLatency to this share of exchanges (congestion
	// spikes on top of the base jitter).
	SpikeRate    float64
	SpikeLatency time.Duration

	// Outages are flap windows in simulated time: while the clock is inside
	// one, the server is down and every exchange costs a timeout.
	Outages []Window
	// FlapPeriod/FlapDown generate a periodic outage schedule without
	// enumerating windows: every FlapPeriod, the server is down for the
	// first FlapDown. Both must be positive to take effect; explicit
	// Outages apply in addition.
	FlapPeriod, FlapDown time.Duration

	// TruncateRate forces the TC bit (and strips the payload) on this share
	// of UDP responses, as an overloaded or size-limited server would.
	TruncateRate float64

	// CorruptRate garbles this share of response packets on the wire. A
	// corrupted packet that no longer parses costs the client a timeout;
	// one that still parses is delivered as received.
	CorruptRate float64

	// Byzantine selects an adversarial answer behavior applied to
	// ByzantineRate of responses (1.0 = every response).
	Byzantine     Mode
	ByzantineRate float64
}

// Down reports whether the plan's outage schedule covers simulated time t.
func (p *Plan) Down(t time.Duration) bool {
	for _, w := range p.Outages {
		if w.Contains(t) {
			return true
		}
	}
	if p.FlapPeriod > 0 && p.FlapDown > 0 {
		return t%p.FlapPeriod < p.FlapDown
	}
	return false
}

// Zero reports whether the plan injects nothing (every field inert).
func (p *Plan) Zero() bool {
	return p.LossRate <= 0 && p.JitterMax <= 0 && p.SpikeRate <= 0 &&
		len(p.Outages) == 0 && !(p.FlapPeriod > 0 && p.FlapDown > 0) &&
		p.TruncateRate <= 0 && p.CorruptRate <= 0 &&
		(p.Byzantine == ByzNone || p.ByzantineRate <= 0)
}

// Decision is the plan's verdict for one exchange.
type Decision struct {
	// Down: the server is inside an outage window; the exchange times out.
	Down bool
	// Drop: the packet is lost in transit; the exchange times out.
	Drop bool
	// ExtraLatency is added to the link's round-trip time.
	ExtraLatency time.Duration
	// Truncate forces the TC bit and strips the response payload (UDP only).
	Truncate bool
	// Corrupt garbles the response wire bytes (UDP only).
	Corrupt bool
	// Byzantine applies the plan's adversarial answer mutation.
	Byzantine Mode
	// Entropy is the exchange's deterministic random word, for downstream
	// draws (e.g. which response bytes to corrupt).
	Entropy uint64
}

// Stats counts the fault decisions a State has made. Attempts counts every
// exchange evaluated — i.e. every query actually sent toward the server,
// whether or not it arrived — which is exactly the "leaked sends" measure
// the retry-amplification experiment reports.
type Stats struct {
	Attempts  int
	TimedOut  int // outage-window hits
	Dropped   int // loss
	Truncated int
	Corrupted int
	Byzantine int
}

// State evaluates a Plan one exchange at a time. It is the mutable half of
// fault injection and must be owned by a single clock domain; it is not
// safe for concurrent use (callers serialize, typically under the domain's
// lock).
type State struct {
	plan  Plan
	n     uint64
	stats Stats
}

// NewState creates the evaluation state for a plan, clamping rates into
// [0, 1].
func NewState(p Plan) *State {
	clamp := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	clamp(&p.LossRate)
	clamp(&p.SpikeRate)
	clamp(&p.TruncateRate)
	clamp(&p.CorruptRate)
	clamp(&p.ByzantineRate)
	return &State{plan: p}
}

// Plan returns the (clamped) plan under evaluation.
func (s *State) Plan() Plan { return s.plan }

// Stats returns a copy of the decision counters.
func (s *State) Stats() Stats { return s.stats }

// Draw streams: each probabilistic aspect of a decision reads its own
// deterministic stream so that enabling one fault type never perturbs the
// draws of another.
const (
	streamLoss = iota + 1
	streamJitter
	streamSpike
	streamTruncate
	streamCorrupt
	streamByzantine
)

// Decide evaluates the next exchange at simulated time now (UDP semantics:
// every fault type applies).
func (s *State) Decide(now time.Duration) Decision {
	return s.decide(now, false)
}

// DecideTCP evaluates the next exchange for a TCP-style transport: the
// stream is reliable, so loss, truncation, and corruption do not apply,
// but outages, latency, and byzantine answers still do.
func (s *State) DecideTCP(now time.Duration) Decision {
	return s.decide(now, true)
}

func (s *State) decide(now time.Duration, tcp bool) Decision {
	n := s.n
	s.n++
	s.stats.Attempts++
	d := Decision{Entropy: mix(uint64(s.plan.Seed), n, 0)}
	if s.plan.Down(now) {
		d.Down = true
		s.stats.TimedOut++
		return d
	}
	if !tcp && s.plan.LossRate > 0 && s.rand01(n, streamLoss) < s.plan.LossRate {
		d.Drop = true
		s.stats.Dropped++
		return d
	}
	if s.plan.JitterMax > 0 {
		d.ExtraLatency = time.Duration(s.rand01(n, streamJitter) * float64(s.plan.JitterMax))
	}
	if s.plan.SpikeRate > 0 && s.rand01(n, streamSpike) < s.plan.SpikeRate {
		d.ExtraLatency += s.plan.SpikeLatency
	}
	if !tcp && s.plan.TruncateRate > 0 && s.rand01(n, streamTruncate) < s.plan.TruncateRate {
		d.Truncate = true
		s.stats.Truncated++
	}
	if !tcp && s.plan.CorruptRate > 0 && s.rand01(n, streamCorrupt) < s.plan.CorruptRate {
		d.Corrupt = true
		s.stats.Corrupted++
	}
	if s.plan.Byzantine != ByzNone && s.plan.ByzantineRate > 0 &&
		s.rand01(n, streamByzantine) < s.plan.ByzantineRate {
		d.Byzantine = s.plan.Byzantine
		s.stats.Byzantine++
	}
	return d
}

// rand01 returns the deterministic uniform [0,1) draw for exchange n on a
// stream.
func (s *State) rand01(n uint64, stream uint64) float64 {
	return float64(mix(uint64(s.plan.Seed), n, stream)>>11) / (1 << 53)
}

// mix is SplitMix64 over (seed, ordinal, stream): a high-quality,
// allocation-free, platform-independent hash that gives every (exchange,
// stream) pair an independent 64-bit word.
func mix(seed, n, stream uint64) uint64 {
	z := seed + n*0x9E3779B97F4A7C15 + stream*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Corrupt garbles b in place, deterministically in entropy: between one and
// three bytes (plus, half the time, a bit in the header area) are
// flipped. Used by the simulated network for CorruptRate faults and by the
// FuzzFaultedDecode harness to drive the wire decoder's error paths.
func Corrupt(entropy uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	flips := 1 + int(entropy%3)
	for i := 0; i < flips; i++ {
		w := mix(entropy, uint64(i), 7)
		pos := int(w % uint64(len(b)))
		b[pos] ^= byte(w >> 8)
		if b[pos] == 0 && w&1 == 0 {
			b[pos] = byte(w >> 16) | 1
		}
	}
	if entropy&(1<<40) != 0 && len(b) >= 12 {
		// Half the time also scramble a header byte: counts and flags are
		// where decoders are most easily confused.
		pos := int(mix(entropy, 99, 7) % 12)
		b[pos] ^= 0x55
	}
}

// transienter is implemented by errors that know whether they represent a
// transient transport condition. It is structural (no import needed), so
// the simulated network, the real transports, and the resolver can agree
// on retryability without depending on each other.
type transienter interface{ Transient() bool }

// IsTransient reports whether err is worth retrying: a transient transport
// condition such as packet loss, a timeout, or a garbled response. Errors
// may declare themselves by implementing `Transient() bool` anywhere in
// their chain; errors that do not are treated as transient, matching
// resolver practice (an unknown transport failure is retried, a typed
// permanent error such as "no route" is not). A nil error is not transient.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok {
			return t.Transient()
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		case interface{ Unwrap() []error }:
			for _, e := range x.Unwrap() {
				if e != nil && !IsTransient(e) {
					return false
				}
			}
			return true
		default:
			return true
		}
	}
	return false
}

// ErrDeadlineExceeded marks a per-query resolution deadline expiry. It is
// permanent for the query: retrying cannot help once the budget is spent.
var ErrDeadlineExceeded = permanentError{errors.New("faults: query deadline exceeded")}

// permanentError wraps an error with Transient() == false.
type permanentError struct{ error }

// Transient implements the transient-classification interface.
func (permanentError) Transient() bool { return false }

// Unwrap exposes the underlying error to errors.Is.
func (e permanentError) Unwrap() error { return e.error }
