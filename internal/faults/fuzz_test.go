package faults

import (
	"testing"
	"time"
)

// FuzzFaultPlan drives Decide with arbitrary plan parameters and clock
// values: no input may panic, stats must stay consistent with decisions,
// and mutually exclusive outcomes (down vs. drop) must never co-occur.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), 0.1, int64(30_000_000), 0.05, int64(90_000_000_000), int64(30_000_000_000), 0.1, 0.1, 1, 0.5, int64(0))
	f.Add(int64(-7), 1.5, int64(-5), -0.5, int64(0), int64(0), 2.0, 2.0, 3, 9.0, int64(3_600_000_000_000))
	f.Add(int64(0), 0.0, int64(0), 0.0, int64(1), int64(1), 0.0, 0.0, 0, 0.0, int64(-1))
	f.Fuzz(func(t *testing.T, seed int64, loss float64, jitter int64, spike float64,
		flapPeriod, flapDown int64, trunc, corrupt float64, byz int, byzRate float64, at int64) {
		s := NewState(Plan{
			Seed:         seed,
			LossRate:     loss,
			JitterMax:    time.Duration(jitter),
			SpikeRate:    spike,
			SpikeLatency: 200 * time.Millisecond,
			FlapPeriod:   time.Duration(flapPeriod),
			FlapDown:     time.Duration(flapDown),
			TruncateRate: trunc,
			CorruptRate:  corrupt,
			Byzantine:    Mode(byz % 4),
			ByzantineRate: byzRate,
		})
		var timeouts, drops int
		for i := 0; i < 64; i++ {
			d := s.Decide(time.Duration(at) + time.Duration(i)*time.Second)
			if d.Down && d.Drop {
				t.Fatal("down and drop in one decision")
			}
			if d.Down {
				timeouts++
			}
			if d.Drop {
				drops++
			}
			if (d.Down || d.Drop) && (d.Truncate || d.Corrupt || d.Byzantine != ByzNone || d.ExtraLatency != 0) {
				t.Fatalf("undelivered exchange carries delivery faults: %+v", d)
			}
			if d.ExtraLatency < 0 {
				t.Fatalf("negative extra latency: %v", d.ExtraLatency)
			}
		}
		st := s.Stats()
		if st.Attempts != 64 || st.TimedOut != timeouts || st.Dropped != drops {
			t.Fatalf("stats %+v inconsistent with decisions (timeouts=%d drops=%d)", st, timeouts, drops)
		}
	})
}
