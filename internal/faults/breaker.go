package faults

import "time"

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long an open circuit waits (in simulated time)
	// before letting a half-open probe through (default 60s).
	Cooldown time.Duration
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 60 * time.Second
	}
	return c
}

// BreakerState is the circuit state.
type BreakerState int

// Circuit states.
const (
	// BreakerClosed passes every request (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen is probing: one request is allowed through; its
	// outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a deterministic circuit breaker driven entirely by the
// caller's logical clock: after Threshold consecutive failures it opens
// and rejects requests; after Cooldown it half-opens and admits a single
// probe whose outcome decides between closing and re-opening. It contains
// no wall-clock reads and no randomness, so runs replay byte-identically.
// It is not safe for concurrent use; its owner serializes access (the
// resolver is single-threaded per instance by design).
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures int
	openedAt time.Duration
	probing  bool

	opens int
	skips int
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the circuit state as of simulated time now (an open
// circuit past its cooldown reads as half-open).
func (b *Breaker) State(now time.Duration) BreakerState {
	if b.state == BreakerOpen && now >= b.openedAt+b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a request may proceed at simulated time now. A
// false return means the caller must skip the request (and should count it
// as load shed). When an open circuit's cooldown has elapsed, the first
// Allow admits the half-open probe; further Allows are rejected until the
// probe reports Success or Failure.
func (b *Breaker) Allow(now time.Duration) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now >= b.openedAt+b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		b.skips++
		return false
	case BreakerHalfOpen:
		if b.probing {
			b.skips++
			return false // one probe at a time
		}
		b.probing = true
		return true
	}
	return true
}

// Success reports a completed request; it resets the failure run and
// closes a half-open circuit.
func (b *Breaker) Success() {
	b.failures = 0
	b.probing = false
	b.state = BreakerClosed
}

// Failure reports a failed request at simulated time now. It returns true
// when this failure opened (or re-opened) the circuit.
func (b *Breaker) Failure(now time.Duration) bool {
	if b.state == BreakerHalfOpen {
		// The probe failed: straight back to open, cooldown restarts.
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
		return true
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = now
		b.opens++
		return true
	}
	return false
}

// Opens returns how many times the circuit opened.
func (b *Breaker) Opens() int { return b.opens }

// Skips returns how many requests the breaker rejected.
func (b *Breaker) Skips() int { return b.skips }
