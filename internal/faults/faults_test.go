package faults

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// TestDecideDeterministic pins the core contract: two states over the same
// plan produce identical decision sequences, and a different seed produces
// a different one.
func TestDecideDeterministic(t *testing.T) {
	plan := Plan{
		Seed: 42, LossRate: 0.2, JitterMax: 30 * time.Millisecond,
		SpikeRate: 0.1, SpikeLatency: 200 * time.Millisecond,
		TruncateRate: 0.15, CorruptRate: 0.1,
		Byzantine: ByzServFail, ByzantineRate: 0.25,
	}
	a, b := NewState(plan), NewState(plan)
	diffSeed := plan
	diffSeed.Seed = 43
	c := NewState(diffSeed)
	same, diff := true, true
	for i := 0; i < 500; i++ {
		now := time.Duration(i) * time.Second
		da, db, dc := a.Decide(now), b.Decide(now), c.Decide(now)
		if da != db {
			same = false
		}
		if da != dc {
			diff = false
		}
	}
	if !same {
		t.Fatal("identical plans diverged")
	}
	if diff {
		t.Fatal("different seeds produced identical decision sequences")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestLossRateConverges checks the probabilistic draws actually hit their
// configured rates.
func TestLossRateConverges(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0.05, 0.3, 0.75} {
		s := NewState(Plan{Seed: 7, LossRate: rate})
		for i := 0; i < n; i++ {
			s.Decide(0)
		}
		got := float64(s.Stats().Dropped) / n
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("loss rate %.2f: observed %.3f", rate, got)
		}
	}
}

// TestOutageWindows checks explicit windows and the periodic flap
// generator.
func TestOutageWindows(t *testing.T) {
	p := Plan{Outages: []Window{{Start: 10 * time.Second, End: 20 * time.Second}}}
	for _, tc := range []struct {
		at   time.Duration
		down bool
	}{
		{0, false}, {10 * time.Second, true}, {19 * time.Second, true},
		{20 * time.Second, false}, {time.Hour, false},
	} {
		if got := p.Down(tc.at); got != tc.down {
			t.Errorf("window Down(%v) = %t, want %t", tc.at, got, tc.down)
		}
	}

	flap := Plan{FlapPeriod: 90 * time.Second, FlapDown: 30 * time.Second}
	for _, tc := range []struct {
		at   time.Duration
		down bool
	}{
		{0, true}, {29 * time.Second, true}, {30 * time.Second, false},
		{89 * time.Second, false}, {90 * time.Second, true}, {121 * time.Second, false},
	} {
		if got := flap.Down(tc.at); got != tc.down {
			t.Errorf("flap Down(%v) = %t, want %t", tc.at, got, tc.down)
		}
	}

	s := NewState(Plan{Outages: []Window{{Start: 0, End: time.Hour}}, LossRate: 1})
	d := s.Decide(time.Minute)
	if !d.Down || d.Drop {
		t.Fatalf("decision inside outage = %+v, want Down only", d)
	}
	if st := s.Stats(); st.Attempts != 1 || st.TimedOut != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDecideTCP pins the reliable-stream semantics: no loss, truncation, or
// corruption, but outages and byzantine answers still apply.
func TestDecideTCP(t *testing.T) {
	s := NewState(Plan{
		Seed: 3, LossRate: 1, TruncateRate: 1, CorruptRate: 1,
		Byzantine: ByzServFail, ByzantineRate: 1,
	})
	d := s.DecideTCP(0)
	if d.Drop || d.Truncate || d.Corrupt {
		t.Fatalf("tcp decision carries UDP-only faults: %+v", d)
	}
	if d.Byzantine != ByzServFail {
		t.Fatalf("tcp decision lost byzantine mode: %+v", d)
	}
	down := NewState(Plan{Outages: []Window{{End: time.Hour}}})
	if !down.DecideTCP(0).Down {
		t.Fatal("tcp decision ignored outage window")
	}
}

// TestRateClamping: out-of-range rates are clamped, not rejected.
func TestRateClamping(t *testing.T) {
	s := NewState(Plan{LossRate: 42, TruncateRate: -3})
	if p := s.Plan(); p.LossRate != 1 || p.TruncateRate != 0 {
		t.Fatalf("clamped plan = %+v", p)
	}
	if !s.Decide(0).Drop {
		t.Fatal("LossRate clamped to 1 did not drop")
	}
}

// TestZero classifies inert plans.
func TestZero(t *testing.T) {
	if !(&Plan{Seed: 9}).Zero() {
		t.Fatal("seed-only plan should be zero")
	}
	if (&Plan{LossRate: 0.1}).Zero() {
		t.Fatal("lossy plan classified zero")
	}
	if (&Plan{FlapPeriod: time.Minute, FlapDown: time.Second}).Zero() {
		t.Fatal("flapping plan classified zero")
	}
	if (&Plan{Byzantine: ByzBogusSig, ByzantineRate: 1}).Zero() {
		t.Fatal("byzantine plan classified zero")
	}
}

// TestCorrupt: deterministic, always changes a non-empty buffer, never
// panics on tiny ones.
func TestCorrupt(t *testing.T) {
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i * 7)
	}
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	Corrupt(12345, a)
	Corrupt(12345, b)
	if string(a) != string(b) {
		t.Fatal("corruption is not deterministic in entropy")
	}
	if string(a) == string(orig) {
		t.Fatal("corruption left the buffer unchanged")
	}
	Corrupt(1, nil)
	Corrupt(1, []byte{0})
}

// transientErr / permanentErr exercise the structural classification.
type classifiedErr struct {
	msg       string
	transient bool
}

func (e *classifiedErr) Error() string   { return e.msg }
func (e *classifiedErr) Transient() bool { return e.transient }

func TestIsTransient(t *testing.T) {
	trans := &classifiedErr{"timeout-ish", true}
	perm := &classifiedErr{"no route", false}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("untyped"), true}, // unknown errors are retried
		{trans, true},
		{perm, false},
		{fmt.Errorf("wrapped: %w", trans), true},
		{fmt.Errorf("wrapped: %w", perm), false},
		{fmt.Errorf("deep: %w", fmt.Errorf("mid: %w", perm)), false},
		{errors.Join(trans, perm), false}, // any permanent member is terminal
		{errors.Join(trans, errors.New("x")), true},
		{ErrDeadlineExceeded, false},
		{fmt.Errorf("resolver: %w", ErrDeadlineExceeded), false},
	}
	for i, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("case %d: IsTransient(%v) = %t, want %t", i, tc.err, got, tc.want)
		}
	}
	if !errors.Is(fmt.Errorf("x: %w", ErrDeadlineExceeded), ErrDeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded does not survive wrapping")
	}
}
