package dns

import (
	"encoding/hex"
	"fmt"
	"net/netip"
	"strings"
)

// RR is a DNS resource record: an owner name, type metadata, and typed
// RDATA. OPT pseudo-records are not represented as RR values; EDNS0 is
// carried on Message directly.
type RR struct {
	Name  Name
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file-like presentation format.
func (r RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type, r.Data)
}

// Key identifies the RRset an RR belongs to.
type Key struct {
	Name  Name
	Type  Type
	Class Class
}

// Key returns the RRset key of r.
func (r RR) Key() Key { return Key{Name: r.Name, Type: r.Type, Class: r.Class} }

// String implements fmt.Stringer.
func (k Key) String() string { return fmt.Sprintf("%s/%s/%s", k.Name, k.Class, k.Type) }

// RData is the typed payload of a resource record.
type RData interface {
	// RType returns the record type this payload belongs to.
	RType() Type
	// String renders the RDATA in presentation format.
	String() string
}

// Compile-time interface compliance checks.
var (
	_ RData = (*AData)(nil)
	_ RData = (*AAAAData)(nil)
	_ RData = (*NSData)(nil)
	_ RData = (*CNAMEData)(nil)
	_ RData = (*SOAData)(nil)
	_ RData = (*PTRData)(nil)
	_ RData = (*MXData)(nil)
	_ RData = (*TXTData)(nil)
	_ RData = (*DNSKEYData)(nil)
	_ RData = (*DSData)(nil)
	_ RData = (*DLVData)(nil)
	_ RData = (*RRSIGData)(nil)
	_ RData = (*NSECData)(nil)
	_ RData = (*NSEC3Data)(nil)
	_ RData = (*RawData)(nil)
)

// AData is an IPv4 address record payload.
type AData struct {
	Addr netip.Addr
}

// RType implements RData.
func (*AData) RType() Type { return TypeA }

// String implements RData.
func (d *AData) String() string { return d.Addr.String() }

// AAAAData is an IPv6 address record payload.
type AAAAData struct {
	Addr netip.Addr
}

// RType implements RData.
func (*AAAAData) RType() Type { return TypeAAAA }

// String implements RData.
func (d *AAAAData) String() string { return d.Addr.String() }

// NSData delegates a zone to a name server.
type NSData struct {
	Target Name
}

// RType implements RData.
func (*NSData) RType() Type { return TypeNS }

// String implements RData.
func (d *NSData) String() string { return d.Target.String() }

// CNAMEData aliases the owner name to Target.
type CNAMEData struct {
	Target Name
}

// RType implements RData.
func (*CNAMEData) RType() Type { return TypeCNAME }

// String implements RData.
func (d *CNAMEData) String() string { return d.Target.String() }

// SOAData is the start-of-authority payload.
type SOAData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	MinTTL  uint32
}

// RType implements RData.
func (*SOAData) RType() Type { return TypeSOA }

// String implements RData.
func (d *SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.MinTTL)
}

// PTRData is a reverse-mapping pointer payload.
type PTRData struct {
	Target Name
}

// RType implements RData.
func (*PTRData) RType() Type { return TypePTR }

// String implements RData.
func (d *PTRData) String() string { return d.Target.String() }

// MXData is a mail-exchanger payload.
type MXData struct {
	Preference uint16
	Exchange   Name
}

// RType implements RData.
func (*MXData) RType() Type { return TypeMX }

// String implements RData.
func (d *MXData) String() string { return fmt.Sprintf("%d %s", d.Preference, d.Exchange) }

// TXTData carries one or more character strings. The paper's DLV-aware DNS
// remedy publishes "dlv=1" / "dlv=0" in a TXT record.
type TXTData struct {
	Strings []string
}

// RType implements RData.
func (*TXTData) RType() Type { return TypeTXT }

// String implements RData.
func (d *TXTData) String() string {
	quoted := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// DNSKEY flag bits (RFC 4034 §2.1.1).
const (
	DNSKEYFlagZone uint16 = 1 << 8 // ZONE: key may sign zone data
	DNSKEYFlagSEP  uint16 = 1      // SEP: key-signing key
)

// DNSKEYData is a zone public key.
type DNSKEYData struct {
	Flags     uint16
	Protocol  uint8
	Algorithm uint8
	PublicKey []byte
}

// RType implements RData.
func (*DNSKEYData) RType() Type { return TypeDNSKEY }

// String implements RData.
func (d *DNSKEYData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.Flags, d.Protocol, d.Algorithm, hex.EncodeToString(d.PublicKey))
}

// IsKSK reports whether the key is a key-signing key (SEP bit set).
func (d *DNSKEYData) IsKSK() bool { return d.Flags&DNSKEYFlagSEP != 0 }

// DSData is a delegation-signer digest deposited in the parent zone.
type DSData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// RType implements RData.
func (*DSData) RType() Type { return TypeDS }

// String implements RData.
func (d *DSData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType, hex.EncodeToString(d.Digest))
}

// DLVData is a look-aside delegation record (RFC 4431). Its RDATA layout is
// identical to DS; only the type code differs.
type DLVData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// RType implements RData.
func (*DLVData) RType() Type { return TypeDLV }

// String implements RData.
func (d *DLVData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType, hex.EncodeToString(d.Digest))
}

// AsDS converts the DLV payload to the equivalent DS payload for trust-chain
// building, as RFC 5074 §4 prescribes.
func (d *DLVData) AsDS() *DSData {
	return &DSData{KeyTag: d.KeyTag, Algorithm: d.Algorithm, DigestType: d.DigestType, Digest: d.Digest}
}

// RRSIGData is a signature over an RRset (RFC 4034 §3).
type RRSIGData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  Name
	Signature   []byte
}

// RType implements RData.
func (*RRSIGData) RType() Type { return TypeRRSIG }

// String implements RData.
func (d *RRSIGData) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		d.TypeCovered, d.Algorithm, d.Labels, d.OriginalTTL,
		d.Expiration, d.Inception, d.KeyTag, d.SignerName,
		hex.EncodeToString(d.Signature))
}

// NSECData proves denial of existence over a canonical span of the zone
// (RFC 4034 §4). Aggressive caching of these spans is the mechanism behind
// the paper's Fig. 8/9 results.
type NSECData struct {
	NextName Name
	Types    []Type
}

// RType implements RData.
func (*NSECData) RType() Type { return TypeNSEC }

// String implements RData.
func (d *NSECData) String() string {
	parts := make([]string, 0, len(d.Types)+1)
	parts = append(parts, d.NextName.String())
	for _, t := range d.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// NSEC3Data is the hashed denial-of-existence record (RFC 5155), included
// for the paper's §7.3 ablation: NSEC3 defeats aggressive negative caching
// and therefore increases DLV leakage.
type NSEC3Data struct {
	HashAlgorithm uint8
	Flags         uint8
	Iterations    uint16
	Salt          []byte
	NextHash      []byte
	Types         []Type
}

// RType implements RData.
func (*NSEC3Data) RType() Type { return TypeNSEC3 }

// String implements RData.
func (d *NSEC3Data) String() string {
	parts := make([]string, 0, len(d.Types)+2)
	parts = append(parts,
		fmt.Sprintf("%d %d %d %s", d.HashAlgorithm, d.Flags, d.Iterations, hex.EncodeToString(d.Salt)),
		hex.EncodeToString(d.NextHash))
	for _, t := range d.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// RawData is the RFC 3597 fallback for types without a dedicated decoder.
type RawData struct {
	T    Type
	Data []byte
}

// RType implements RData.
func (d *RawData) RType() Type { return d.T }

// String implements RData.
func (d *RawData) String() string {
	return fmt.Sprintf("\\# %d %s", len(d.Data), hex.EncodeToString(d.Data))
}

// SortTypes sorts a type list in ascending numeric order, as the NSEC type
// bitmap requires. Insertion sort: type lists hold a handful of entries and
// this runs for every name in every zone build, where sort.Slice's closure
// and swapper allocations add up.
func SortTypes(ts []Type) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1] > ts[j]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// HasType reports whether ts contains t.
func HasType(ts []Type, t Type) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}
