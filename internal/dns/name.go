// Package dns implements the DNS substrate used throughout the repository:
// domain names, record types, resource records, messages, and the RFC 1035
// wire codec (including name compression and EDNS0).
//
// The package is self-contained and uses only the standard library. It
// implements the subset of DNS needed to reproduce the paper faithfully:
// ordinary lookups, DNSSEC record types (DNSKEY, DS, RRSIG, NSEC, NSEC3),
// the DLV record type (32769, RFC 4431), EDNS0 with the DO bit, and the
// reserved header Z bit used by the paper's "DLV-aware DNS" remedy.
package dns

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified, canonicalized domain name.
//
// Invariants (established by MakeName / MustName and preserved by all
// methods): the text is lowercase, ends with a trailing dot, and every label
// is 1..63 bytes with a total length of at most 255 bytes. The DNS root is
// the single dot ".".
type Name string

// Root is the DNS root name.
const Root Name = "."

// Maximum sizes from RFC 1035 §2.3.4.
const (
	maxLabelLen = 63
	maxNameLen  = 255
)

// Errors returned by name construction and manipulation.
var (
	ErrEmptyLabel   = errors.New("dns: empty label")
	ErrLabelTooLong = errors.New("dns: label exceeds 63 octets")
	ErrNameTooLong  = errors.New("dns: name exceeds 255 octets")
	ErrBadLabelChar = errors.New("dns: label contains prohibited character")
)

// MakeName parses and canonicalizes a textual domain name. The input may or
// may not carry a trailing dot; it is lowercased and validated. Escapes are
// not supported: a dot always separates labels.
func MakeName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	s = strings.ToLower(strings.TrimSuffix(s, "."))
	if len(s)+1 > maxNameLen {
		return "", fmt.Errorf("%w: %q", ErrNameTooLong, s)
	}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != '.' {
			if !isNameChar(s[i]) {
				return "", fmt.Errorf("%w: %q in %q", ErrBadLabelChar, string(s[i]), s)
			}
			continue
		}
		label := s[start:i]
		if label == "" {
			return "", fmt.Errorf("%w: %q", ErrEmptyLabel, s)
		}
		if len(label) > maxLabelLen {
			return "", fmt.Errorf("%w: %q", ErrLabelTooLong, label)
		}
		start = i + 1
	}
	return Name(s + "."), nil
}

// isNameChar reports whether c may appear inside a label. We accept the
// hostname alphabet plus underscore (used by service labels and by DNSSEC
// tooling) and '*' (wildcards); this is a superset of the hostname rule and
// a subset of what the wire format technically permits.
func isNameChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		return true
	case c == '-' || c == '_' || c == '*':
		return true
	default:
		return false
	}
}

// MustName is MakeName for constant inputs; it panics on invalid input and
// is intended for tests and literals.
func MustName(s string) Name {
	n, err := MakeName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return n == Root || n == "" }

// String returns the canonical textual form (always with a trailing dot).
func (n Name) String() string {
	if n == "" {
		return "."
	}
	return string(n)
}

// Labels returns the labels of n from leftmost to rightmost. The root has no
// labels.
func (n Name) Labels() []string {
	if n.IsRoot() {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// LabelCount returns the number of labels in n.
func (n Name) LabelCount() int {
	if n.IsRoot() {
		return 0
	}
	return strings.Count(string(n), ".")
}

// Parent returns n with its leftmost label removed; the parent of the root
// is the root itself.
func (n Name) Parent() Name {
	if n.IsRoot() {
		return Root
	}
	s := string(n)
	i := strings.IndexByte(s, '.')
	rest := s[i+1:]
	if rest == "" {
		return Root
	}
	return Name(rest)
}

// FirstLabel returns the leftmost label of n, or "" for the root.
func (n Name) FirstLabel() string {
	if n.IsRoot() {
		return ""
	}
	s := string(n)
	return s[:strings.IndexByte(s, '.')]
}

// IsSubdomainOf reports whether n is equal to or underneath zone.
func (n Name) IsSubdomainOf(zone Name) bool {
	if zone.IsRoot() {
		return true
	}
	if n == zone {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(zone))
}

// Prepend returns label.n. It validates the new label.
func (n Name) Prepend(label string) (Name, error) {
	if !n.IsRoot() && prefixCanonical(label) {
		s := label + "." + string(n)
		if len(s) > maxNameLen {
			return "", fmt.Errorf("%w: %q", ErrNameTooLong, s)
		}
		return Name(s), nil
	}
	return MakeName(label + "." + string(n))
}

// Concat joins a relative prefix (which may itself contain dots) onto a
// suffix name, e.g. Concat("example.com", dlvZone) for look-aside queries.
func Concat(prefix string, suffix Name) (Name, error) {
	prefix = strings.TrimSuffix(prefix, ".")
	if prefix == "" {
		return suffix, nil
	}
	if suffix.IsRoot() {
		return MakeName(prefix)
	}
	// Fast path: a prefix that is already canonical joins the
	// dot-terminated suffix in one concatenation. Going through MakeName
	// would trim the suffix's trailing dot and re-add it, paying a second
	// copy — and this is the look-aside name construction hot path.
	if prefixCanonical(prefix) {
		s := prefix + "." + string(suffix)
		if len(s) > maxNameLen {
			return "", fmt.Errorf("%w: %q", ErrNameTooLong, s)
		}
		return Name(s), nil
	}
	return MakeName(prefix + "." + string(suffix))
}

// prefixCanonical reports whether a relative (no trailing dot) prefix is
// made of valid lowercase labels, i.e. joining it onto a canonical suffix
// needs no further normalization. Anything else — uppercase, bad characters,
// empty or oversized labels — falls back to MakeName for normalization or a
// precise error.
func prefixCanonical(prefix string) bool {
	if prefix == "" {
		return false
	}
	start := 0
	for i := 0; i <= len(prefix); i++ {
		if i != len(prefix) && prefix[i] != '.' {
			if !isNameChar(prefix[i]) {
				return false
			}
			continue
		}
		if i == start || i-start > maxLabelLen {
			return false
		}
		start = i + 1
	}
	return true
}

// StripSuffix returns the part of n above zone, as a relative textual name
// without a trailing dot, and whether n was inside zone. For n == zone it
// returns "" and true.
func (n Name) StripSuffix(zone Name) (string, bool) {
	if !n.IsSubdomainOf(zone) {
		return "", false
	}
	if n == zone {
		return "", true
	}
	s := strings.TrimSuffix(string(n), ".")
	if zone.IsRoot() {
		return s, true
	}
	return strings.TrimSuffix(s, "."+strings.TrimSuffix(string(zone), ".")), true
}

// WireLen returns the uncompressed wire-format length of n in octets.
func (n Name) WireLen() int {
	if n.IsRoot() {
		return 1
	}
	return len(n) + 1
}

// CanonicalCompare orders names per RFC 4034 §6.1 ("canonical DNS name
// order"): labels are compared right to left as case-insensitive byte
// strings, and absence of a label sorts before any label. It returns -1, 0,
// or +1. This ordering underpins the NSEC chain and span-covering logic.
//
// Names are canonically lowercase (the MakeName invariant), so labels
// compare as plain byte strings. The walk slices labels off the ends of
// both names in place — this is the hottest comparison in the repository
// (zone owner indexes, NSEC span search) and must not allocate.
func CanonicalCompare(a, b Name) int {
	if a == b {
		return 0
	}
	// ad/bd index the dot that closes each name's next unread label
	// (rightmost first); negative means that name is exhausted.
	ad, bd := len(a)-1, len(b)-1
	if a.IsRoot() {
		ad = -1
	}
	if b.IsRoot() {
		bd = -1
	}
	for {
		switch {
		case ad < 0 && bd < 0:
			return 0
		case ad < 0:
			return -1
		case bd < 0:
			return 1
		}
		as := strings.LastIndexByte(string(a[:ad]), '.') + 1
		bs := strings.LastIndexByte(string(b[:bd]), '.') + 1
		if c := strings.Compare(string(a[as:ad]), string(b[bs:bd])); c != 0 {
			return c
		}
		ad, bd = as-1, bs-1
	}
}

// CanonicalLess reports whether a sorts strictly before b in canonical
// order.
func CanonicalLess(a, b Name) bool { return CanonicalCompare(a, b) < 0 }

// Covered reports whether name falls strictly between lower and next in
// canonical order, treating the interval as wrapping at the zone apex the
// way an NSEC chain does: if next <= lower the span wraps around the end of
// the zone.
func Covered(name, lower, next Name) bool {
	if CanonicalCompare(lower, next) < 0 {
		return CanonicalCompare(lower, name) < 0 && CanonicalCompare(name, next) < 0
	}
	// Wrap-around span (last NSEC in the chain points back to the apex).
	return CanonicalCompare(lower, name) < 0 || CanonicalCompare(name, next) < 0
}
