package dns

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMakeName(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    Name
		wantErr error
	}{
		{name: "simple", in: "example.com", want: "example.com."},
		{name: "trailing dot", in: "example.com.", want: "example.com."},
		{name: "uppercase folded", in: "EXAMPLE.Com", want: "example.com."},
		{name: "root empty", in: "", want: Root},
		{name: "root dot", in: ".", want: Root},
		{name: "deep", in: "bbs.sub1.example.com", want: "bbs.sub1.example.com."},
		{name: "underscore and dash", in: "_dmarc.my-site.org", want: "_dmarc.my-site.org."},
		{name: "wildcard", in: "*.example.com", want: "*.example.com."},
		{name: "digits", in: "8.8.8.8.in-addr.arpa", want: "8.8.8.8.in-addr.arpa."},
		{name: "empty label", in: "a..b", wantErr: ErrEmptyLabel},
		{name: "leading dot", in: ".example.com", wantErr: ErrEmptyLabel},
		{name: "label too long", in: strings.Repeat("a", 64) + ".com", wantErr: ErrLabelTooLong},
		{name: "name too long", in: strings.Repeat("abcdefg.", 33) + "com", wantErr: ErrNameTooLong},
		{name: "bad char space", in: "ex ample.com", wantErr: ErrBadLabelChar},
		{name: "bad char slash", in: "a/b.com", wantErr: ErrBadLabelChar},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MakeName(tt.in)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("MakeName(%q) error = %v, want %v", tt.in, err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("MakeName(%q) unexpected error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("MakeName(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNameLabels(t *testing.T) {
	n := MustName("www.example.com")
	want := []string{"www", "example", "com"}
	if got := n.Labels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Labels() = %v, want %v", got, want)
	}
	if got := n.LabelCount(); got != 3 {
		t.Fatalf("LabelCount() = %d, want 3", got)
	}
	if got := Root.Labels(); got != nil {
		t.Fatalf("Root.Labels() = %v, want nil", got)
	}
	if got := Root.LabelCount(); got != 0 {
		t.Fatalf("Root.LabelCount() = %d, want 0", got)
	}
}

func TestNameParentChain(t *testing.T) {
	n := MustName("bbs.sub1.example.com")
	var chain []Name
	for !n.IsRoot() {
		chain = append(chain, n)
		n = n.Parent()
	}
	chain = append(chain, n)
	want := []Name{"bbs.sub1.example.com.", "sub1.example.com.", "example.com.", "com.", Root}
	if !reflect.DeepEqual(chain, want) {
		t.Fatalf("parent chain = %v, want %v", chain, want)
	}
	if Root.Parent() != Root {
		t.Fatalf("Root.Parent() = %q, want root", Root.Parent())
	}
}

func TestNameFirstLabel(t *testing.T) {
	if got := MustName("www.example.com").FirstLabel(); got != "www" {
		t.Fatalf("FirstLabel() = %q, want www", got)
	}
	if got := Root.FirstLabel(); got != "" {
		t.Fatalf("Root.FirstLabel() = %q, want empty", got)
	}
}

func TestIsSubdomainOf(t *testing.T) {
	tests := []struct {
		child, zone string
		want        bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "com", true},
		{"anything.org", ".", true},
		{"example.com", "ample.com", false}, // suffix match must be label-aligned
		{"com", "example.com", false},
		{"example.net", "example.com", false},
	}
	for _, tt := range tests {
		child, zone := MustName(tt.child), MustName(tt.zone)
		if got := child.IsSubdomainOf(zone); got != tt.want {
			t.Errorf("(%q).IsSubdomainOf(%q) = %t, want %t", child, zone, got, tt.want)
		}
	}
}

func TestPrependAndConcat(t *testing.T) {
	base := MustName("example.com")
	got, err := base.Prepend("www")
	if err != nil {
		t.Fatalf("Prepend: %v", err)
	}
	if got != "www.example.com." {
		t.Fatalf("Prepend = %q", got)
	}
	if _, err := base.Prepend("bad label"); err == nil {
		t.Fatal("Prepend with invalid label succeeded")
	}

	dlvZone := MustName("dlv.isc.org")
	cat, err := Concat("example.com", dlvZone)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if cat != "example.com.dlv.isc.org." {
		t.Fatalf("Concat = %q", cat)
	}
	if cat2, err := Concat("", dlvZone); err != nil || cat2 != dlvZone {
		t.Fatalf("Concat empty prefix = %q, %v", cat2, err)
	}
	if cat3, err := Concat("example.com.", Root); err != nil || cat3 != "example.com." {
		t.Fatalf("Concat onto root = %q, %v", cat3, err)
	}
}

func TestStripSuffix(t *testing.T) {
	tests := []struct {
		n, zone string
		want    string
		ok      bool
	}{
		{"example.com.dlv.isc.org", "dlv.isc.org", "example.com", true},
		{"dlv.isc.org", "dlv.isc.org", "", true},
		{"example.com", "dlv.isc.org", "", false},
		{"a.b.c", ".", "a.b.c", true},
	}
	for _, tt := range tests {
		got, ok := MustName(tt.n).StripSuffix(MustName(tt.zone))
		if ok != tt.ok || got != tt.want {
			t.Errorf("(%q).StripSuffix(%q) = (%q, %t), want (%q, %t)",
				tt.n, tt.zone, got, ok, tt.want, tt.ok)
		}
	}
}

func TestCanonicalCompare(t *testing.T) {
	// Ordered example straight from RFC 4034 §6.1.
	ordered := []Name{
		MustName("example"),
		MustName("a.example"),
		MustName("yljkjljk.a.example"),
		MustName("z.a.example"),
		MustName("zabc.a.example"),
		MustName("z.example"),
	}
	for i := range ordered {
		for j := range ordered {
			got := CanonicalCompare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CanonicalCompare(%q, %q) = %d, want %d",
					ordered[i], ordered[j], got, want)
			}
		}
	}
	if !CanonicalLess(Root, MustName("aaa")) {
		t.Error("root must sort before any name")
	}
}

func TestCovered(t *testing.T) {
	lower := MustName("alpha.example")
	next := MustName("delta.example")
	tests := []struct {
		name string
		want bool
	}{
		{"beta.example", true},
		{"alpha.example", false}, // exact match is not covered
		{"delta.example", false},
		{"zeta.example", false},
	}
	for _, tt := range tests {
		if got := Covered(MustName(tt.name), lower, next); got != tt.want {
			t.Errorf("Covered(%q) = %t, want %t", tt.name, got, tt.want)
		}
	}
	// Wrap-around span: last NSEC points back to the apex.
	apex := MustName("example")
	last := MustName("zeta.example")
	if !Covered(MustName("zz.example"), last, apex) {
		t.Error("wrap-around span must cover names after the last owner")
	}
	if Covered(MustName("beta.example"), last, apex) {
		t.Error("wrap-around span must not cover names inside the chain")
	}
}

func TestWireLen(t *testing.T) {
	if got := Root.WireLen(); got != 1 {
		t.Fatalf("Root.WireLen() = %d, want 1", got)
	}
	// "example.com." → 1+7+1+3+1 = 13
	if got := MustName("example.com").WireLen(); got != 13 {
		t.Fatalf("WireLen = %d, want 13", got)
	}
}

// randomName produces a valid random name for property tests.
func randomName(r *rand.Rand) Name {
	labelCount := 1 + r.Intn(4)
	labels := make([]string, labelCount)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	for i := range labels {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet)-1)]) // avoid '-' often enough
		}
		labels[i] = sb.String()
	}
	return MustName(strings.Join(labels, "."))
}

func TestCanonicalOrderProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Antisymmetry and consistency with equality.
	prop := func(seedA, seedB int64) bool {
		a := randomName(rand.New(rand.NewSource(seedA)))
		b := randomName(rand.New(rand.NewSource(seedB)))
		c1, c2 := CanonicalCompare(a, b), CanonicalCompare(b, a)
		if a == b {
			return c1 == 0 && c2 == 0
		}
		return c1 == -c2 && c1 != 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalSortTransitivity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	names := make([]Name, 200)
	for i := range names {
		names[i] = randomName(r)
	}
	sort.Slice(names, func(i, j int) bool { return CanonicalLess(names[i], names[j]) })
	for i := 1; i < len(names); i++ {
		if CanonicalLess(names[i], names[i-1]) {
			t.Fatalf("sort produced out-of-order pair: %q before %q", names[i-1], names[i])
		}
	}
}

func TestCoveredSpanProperty(t *testing.T) {
	// In a sorted chain of distinct names, each name is covered by exactly
	// the span it falls into and no other.
	r := rand.New(rand.NewSource(11))
	seen := map[Name]bool{}
	var chain []Name
	for len(chain) < 50 {
		n := randomName(r)
		if !seen[n] {
			seen[n] = true
			chain = append(chain, n)
		}
	}
	sort.Slice(chain, func(i, j int) bool { return CanonicalLess(chain[i], chain[j]) })
	for trial := 0; trial < 200; trial++ {
		probe := randomName(r)
		if seen[probe] {
			continue
		}
		covers := 0
		for i := range chain {
			next := chain[(i+1)%len(chain)]
			if Covered(probe, chain[i], next) {
				covers++
			}
		}
		if covers != 1 {
			t.Fatalf("probe %q covered by %d spans, want exactly 1", probe, covers)
		}
	}
}

// TestCanonicalCompareMatchesReference pins the allocation-free comparison
// against the straightforward split-into-labels definition of RFC 4034
// §6.1, over random names plus the shared-prefix shapes the in-place walk
// could get wrong.
func TestCanonicalCompareMatchesReference(t *testing.T) {
	reference := func(a, b Name) int {
		al, bl := a.Labels(), b.Labels()
		for i := 1; ; i++ {
			ai, bi := len(al)-i, len(bl)-i
			switch {
			case ai < 0 && bi < 0:
				return 0
			case ai < 0:
				return -1
			case bi < 0:
				return 1
			}
			if c := strings.Compare(al[ai], bl[bi]); c != 0 {
				return c
			}
		}
	}
	fixed := []Name{
		Root, MustName("com"), MustName("example.com"),
		MustName("a.example.com"), MustName("aa.example.com"),
		MustName("ab.x"), MustName("abc.x"), MustName("b.x"),
		MustName("x"), MustName("x.x"), MustName("*.example.com"),
	}
	r := rand.New(rand.NewSource(3))
	names := append([]Name{}, fixed...)
	for i := 0; i < 150; i++ {
		names = append(names, randomName(r))
	}
	for _, a := range names {
		for _, b := range names {
			if got, want := CanonicalCompare(a, b), reference(a, b); got != want {
				t.Fatalf("CanonicalCompare(%q, %q) = %d, reference says %d", a, b, got, want)
			}
		}
	}
	if got := testing.AllocsPerRun(100, func() {
		CanonicalCompare(fixed[3], fixed[4])
	}); got != 0 {
		t.Errorf("CanonicalCompare allocates %.1f times per call, want 0", got)
	}
}
