package dns

import (
	"fmt"
	"sync"
)

// nameInternCap bounds the intern table. A top-1M-scale universe touches a
// few million distinct owner names; the table resets when full rather than
// evicting, like the zone signature cache, so a pathological workload costs
// repeated misses instead of unbounded memory.
const nameInternCap = 1 << 20

// nameIntern maps decoded presentation text (lowercase, dots between labels,
// no trailing dot — exactly what the reference decoder hands to MakeName) to
// the interned Name. Lookups key on a stack buffer via the compiler's
// map[string(bytes)] optimization, so a hit allocates nothing.
var nameIntern = struct {
	sync.RWMutex
	m map[string]Name
}{m: make(map[string]Name, 1024)}

// internName resolves the canonical text of a decoded name to a shared Name
// value. On a miss the text is validated through MakeName — accepting and
// rejecting exactly what the reference decoder does — and the result is
// published for subsequent hits.
func internName(text []byte) (Name, error) {
	nameIntern.RLock()
	n, ok := nameIntern.m[string(text)]
	nameIntern.RUnlock()
	if ok {
		return n, nil
	}
	n, err := MakeName(string(text))
	if err != nil {
		return "", fmt.Errorf("decoding name: %w", err)
	}
	nameIntern.Lock()
	if len(nameIntern.m) >= nameInternCap {
		nameIntern.m = make(map[string]Name, 1024)
	}
	nameIntern.m[string(text)] = n
	nameIntern.Unlock()
	return n, nil
}
