package dns

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage drives the wire decoder with arbitrary input: it must
// never panic, and anything it accepts must re-encode and decode to an
// equal header. Run with `go test -fuzz=FuzzDecodeMessage ./internal/dns`.
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: a real query, a real signed response, an OPT with
	// padding, and a few corrupt variants.
	q := NewQuery(1, MustName("www.example.com"), TypeA, true)
	qw, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qw)
	r := sampleMessage()
	rw, err := r.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rw)
	p := NewQuery(2, MustName("pad.example"), TypeTXT, true)
	p.EDNS.Padding = 17
	pw, err := p.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pw)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip at the header level.
		wire, err := m.Encode()
		if err != nil {
			// Decoded messages can still be unencodable only when the
			// input smuggled in something our encoder validates harder
			// (e.g. RDATA size); that is acceptable.
			return
		}
		back, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if back.Header != m.Header {
			t.Fatalf("header changed across roundtrip: %+v vs %+v", m.Header, back.Header)
		}
	})
}
