package dns

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/dnsprivacy/lookaside/internal/faults"
)

// FuzzDecodeMessage drives the wire decoder with arbitrary input: it must
// never panic, and anything it accepts must re-encode and decode to an
// equal header. Run with `go test -fuzz=FuzzDecodeMessage ./internal/dns`.
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: a real query, a real signed response, an OPT with
	// padding, and a few corrupt variants.
	q := NewQuery(1, MustName("www.example.com"), TypeA, true)
	qw, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qw)
	r := sampleMessage()
	rw, err := r.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rw)
	p := NewQuery(2, MustName("pad.example"), TypeTXT, true)
	p.EDNS.Padding = 17
	pw, err := p.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pw)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip at the header level.
		wire, err := m.Encode()
		if err != nil {
			// Decoded messages can still be unencodable only when the
			// input smuggled in something our encoder validates harder
			// (e.g. RDATA size); that is acceptable.
			return
		}
		back, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if back.Header != m.Header {
			t.Fatalf("header changed across roundtrip: %+v vs %+v", m.Header, back.Header)
		}
	})
}

// FuzzFaultedDecode feeds the decoder exactly what the fault layer's
// CorruptRate produces on the simulated wire: a message garbled in place by
// faults.Corrupt under fuzzer-chosen entropy. The decoder must never panic
// on a corrupted packet, the fast path and the reference decoder must agree
// on it, and anything accepted must survive re-encoding — the invariants
// the simnet corruption path (deliver-if-parseable, else timeout) relies
// on. Run with `go test -fuzz=FuzzFaultedDecode ./internal/dns`.
func FuzzFaultedDecode(f *testing.F) {
	q := NewQuery(1, MustName("www.example.com"), TypeA, true)
	qw, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	r := sampleMessage()
	rw, err := r.Encode()
	if err != nil {
		f.Fatal(err)
	}
	for _, entropy := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		f.Add(qw, entropy)
		f.Add(rw, entropy)
	}
	f.Add([]byte{}, uint64(7))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint64(1<<40|3))

	f.Fuzz(func(t *testing.T, data []byte, entropy uint64) {
		wire := append([]byte(nil), data...)
		faults.Corrupt(entropy, wire)
		fast, fastErr := DecodeMessage(wire)
		ref, refErr := decodeMessageReference(wire)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("accept/reject disagreement on corrupted wire: fast err=%v, reference err=%v",
				fastErr, refErr)
		}
		if fastErr != nil {
			return // rejected corruption becomes a simnet timeout; fine
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoded messages differ:\nfast:      %#v\nreference: %#v", fast, ref)
		}
		if wire2, err := fast.Encode(); err == nil {
			if _, err := DecodeMessage(wire2); err != nil {
				t.Fatalf("re-decode of accepted corrupted message failed: %v", err)
			}
		}
	})
}

// FuzzDecodeDifferential pits the zero-allocation decode fast path (interned
// names, pre-sized sections) against the retained seed-era reference decoder
// on arbitrary input. Both must agree on accept/reject, produce deeply equal
// messages, and — when the result is encodable — byte-identical re-encodings.
// Run with `go test -fuzz=FuzzDecodeDifferential ./internal/dns`.
func FuzzDecodeDifferential(f *testing.F) {
	q := NewQuery(1, MustName("www.example.com"), TypeA, true)
	qw, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qw)
	r := sampleMessage()
	rw, err := r.Encode() // compressed: exercises pointer chasing in both paths
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rw)
	p := NewQuery(2, MustName("pad.example"), TypeTXT, true)
	p.EDNS.Padding = 17
	pw, err := p.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pw)
	// Mixed-case owner: the fast path lowercases while copying, the
	// reference path lowercases in MakeName; results must still agree.
	f.Add([]byte{
		0, 7, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		3, 'W', 'w', 'W', 7, 'E', 'x', 'A', 'm', 'P', 'l', 'E', 3, 'c', 'O', 'm', 0,
		0, 1, 0, 1,
	})
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fast, fastErr := DecodeMessage(data)
		ref, refErr := decodeMessageReference(data)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("accept/reject disagreement: fast err=%v, reference err=%v", fastErr, refErr)
		}
		if fastErr != nil {
			return
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("decoded messages differ:\nfast:      %#v\nreference: %#v", fast, ref)
		}
		fw, fastEncErr := fast.Encode()
		rw, refEncErr := ref.Encode()
		if (fastEncErr == nil) != (refEncErr == nil) {
			t.Fatalf("re-encode disagreement: fast err=%v, reference err=%v", fastEncErr, refEncErr)
		}
		if fastEncErr == nil && !bytes.Equal(fw, rw) {
			t.Fatalf("re-encodings differ:\nfast:      %x\nreference: %x", fw, rw)
		}
	})
}
