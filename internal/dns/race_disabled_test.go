//go:build !race

package dns

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
