package dns

import "fmt"

// Type is a DNS resource record type code.
type Type uint16

// Record types used in this repository. TypeDLV is the look-aside record of
// RFC 4431; its query type code 32769 is what the paper filters on when
// extracting DLV traffic from captures.
const (
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeOPT    Type = 41
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	TypeNSEC3  Type = 50
	TypeAXFR   Type = 252
	TypeDLV    Type = 32769
)

var typeNames = map[Type]string{
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeOPT:    "OPT",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeNSEC:   "NSEC",
	TypeDNSKEY: "DNSKEY",
	TypeNSEC3:  "NSEC3",
	TypeAXFR:   "AXFR",
	TypeDLV:    "DLV",
}

// String returns the mnemonic for known types and TYPEnnn otherwise
// (RFC 3597 presentation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class code. Only IN is used.
type Class uint16

// Classes.
const (
	ClassIN Class = 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == ClassIN {
		return "IN"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code.
type RCode uint8

// Response codes. The paper's DLV-server observations distinguish exactly
// "No error" (record deposited) from "No such name" (NXDOMAIN, pure
// leakage).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String implements fmt.Stringer.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// Opcode is a DNS operation code; only queries are used here.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery Opcode = 0
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	if o == OpcodeQuery {
		return "QUERY"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}
