package dns

import (
	"testing"
)

// Allocation budgets for the wire-codec hot path. These are ceilings, not
// targets: a regression that pushes any operation above its budget fails
// loudly. Budgets assume a warmed name-intern table (steady experiment
// state), which the tests arrange before measuring.
const (
	// allocBudgetEncode: Encode allocates exactly once — the copy-out of
	// the pooled builder's buffer. Everything else (builder, compression
	// map) comes from the pool.
	allocBudgetEncode = 1
	// allocBudgetAppendEncode: AppendEncode into a pre-sized destination
	// allocates nothing; the encoder writes through the pooled builder and
	// appends into caller memory.
	allocBudgetAppendEncode = 0
	// allocBudgetWireSize: WireSize runs the encoder in measure mode —
	// offsets advance, no bytes are written, nothing escapes.
	allocBudgetWireSize = 0
	// allocBudgetDecodeQuestion: the question-only decoder resolves the
	// owner name through the intern table and returns a value type.
	allocBudgetDecodeQuestion = 0
	// allocBudgetDecodeMessage: a full decode of the signed sample
	// response (question + 2 answers + authority + additional + OPT)
	// still allocates the Message, section slices, and per-RR RData
	// values; names come from the intern table. The reference decoder
	// needs ~58 allocations on the same input.
	allocBudgetDecodeMessage = 16
)

func measureAllocs(t *testing.T, name string, budget float64, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, fn); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.0f", name, got, budget)
	}
}

func TestAllocationBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	m := sampleMessage()
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the intern table so steady-state behavior is measured.
	if _, err := DecodeMessage(wire); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, len(wire)+64)

	measureAllocs(t, "Encode", allocBudgetEncode, func() {
		if _, err := m.Encode(); err != nil {
			t.Fatal(err)
		}
	})
	measureAllocs(t, "AppendEncode", allocBudgetAppendEncode, func() {
		if _, err := m.AppendEncode(dst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	measureAllocs(t, "WireSize", allocBudgetWireSize, func() {
		if _, err := m.WireSize(); err != nil {
			t.Fatal(err)
		}
	})
	measureAllocs(t, "DecodeQuestion", allocBudgetDecodeQuestion, func() {
		if _, err := DecodeQuestion(wire); err != nil {
			t.Fatal(err)
		}
	})
	measureAllocs(t, "DecodeMessage", allocBudgetDecodeMessage, func() {
		if _, err := DecodeMessage(wire); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDecodeQuestion pins the question-only fast decoder against the full
// decoder for every fixture message that carries a question.
func TestDecodeQuestion(t *testing.T) {
	for name, m := range fixtureMessages() {
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q, err := DecodeQuestion(wire)
		if err != nil {
			t.Fatalf("%s: DecodeQuestion: %v", name, err)
		}
		if len(m.Question) == 0 {
			if q != (Question{}) {
				t.Errorf("%s: question-less message decoded to %+v", name, q)
			}
			continue
		}
		if q != m.Question[0] {
			t.Errorf("%s: DecodeQuestion = %+v, want %+v", name, q, m.Question[0])
		}
	}
	if _, err := DecodeQuestion([]byte{1, 2, 3}); err == nil {
		t.Error("DecodeQuestion accepted a truncated header")
	}
}

// TestMessageClone verifies clones are independent where it matters for the
// packet cache: section slices must not alias, so appends on a served
// response (e.g. the resolver's CNAME chase) never corrupt the cached copy.
func TestMessageClone(t *testing.T) {
	m := sampleMessage()
	c := m.Clone()
	if c == m {
		t.Fatal("Clone returned the receiver")
	}
	cWire, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	mWire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(cWire) != string(mWire) {
		t.Fatal("clone encodes differently from original")
	}
	// Mutating the clone's header and appending to its sections must leave
	// the original untouched.
	c.Header.ID ^= 0xFFFF
	c.Answer = append(c.Answer, c.Answer[0])
	c.EDNS.Padding = 99
	if m.Header.ID == c.Header.ID {
		t.Error("header mutation leaked into original")
	}
	if len(m.Answer) == len(c.Answer) {
		t.Error("answer append leaked into original")
	}
	if m.EDNS.Padding == 99 {
		t.Error("EDNS mutation leaked into original")
	}
	if (&Message{}).Clone() == nil {
		t.Error("Clone of empty message is nil")
	}
}
