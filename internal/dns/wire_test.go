package dns

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	m := NewQuery(0x1234, MustName("www.example.com"), TypeA, true)
	r := NewResponse(m)
	r.Header.RA = true
	r.Header.AD = true
	r.Header.RCode = RCodeNoError
	r.Answer = []RR{
		{
			Name: MustName("www.example.com"), Type: TypeA, Class: ClassIN, TTL: 300,
			Data: &AData{Addr: netip.MustParseAddr("192.0.2.10")},
		},
		{
			Name: MustName("www.example.com"), Type: TypeRRSIG, Class: ClassIN, TTL: 300,
			Data: &RRSIGData{
				TypeCovered: TypeA, Algorithm: 13, Labels: 3, OriginalTTL: 300,
				Expiration: 1700000000, Inception: 1690000000, KeyTag: 12345,
				SignerName: MustName("example.com"), Signature: []byte{1, 2, 3, 4},
			},
		},
	}
	r.Authority = []RR{
		{
			Name: MustName("example.com"), Type: TypeNS, Class: ClassIN, TTL: 3600,
			Data: &NSData{Target: MustName("ns1.example.com")},
		},
	}
	r.Additional = []RR{
		{
			Name: MustName("ns1.example.com"), Type: TypeA, Class: ClassIN, TTL: 3600,
			Data: &AData{Addr: netip.MustParseAddr("192.0.2.1")},
		},
	}
	return r
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip mismatch:\nsent: %s\ngot:  %s", m, got)
	}
}

func TestNameCompressionSavesBytes(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// The message repeats example.com-derived names 6 times; compression
	// must keep the message far below the uncompressed size.
	uncompressed := 0
	for _, q := range m.Question {
		uncompressed += q.Name.WireLen() + 4
	}
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			uncompressed += rr.Name.WireLen() + 10
			rd, err := EncodeRData(rr.Data)
			if err != nil {
				t.Fatal(err)
			}
			uncompressed += len(rd)
		}
	}
	uncompressed += 12 + 11 // header + OPT
	if len(wire) >= uncompressed {
		t.Fatalf("no compression benefit: wire=%d uncompressed≈%d", len(wire), uncompressed)
	}
}

// fixturePayloads covers every supported RDATA shape.
func fixturePayloads() []RData {
	return []RData{
		&AData{Addr: netip.MustParseAddr("203.0.113.7")},
		&AAAAData{Addr: netip.MustParseAddr("2001:db8::1")},
		&NSData{Target: MustName("ns.example.net")},
		&CNAMEData{Target: MustName("alias.example.org")},
		&PTRData{Target: MustName("host.example.com")},
		&SOAData{
			MName: MustName("ns1.example.com"), RName: MustName("hostmaster.example.com"),
			Serial: 2024010101, Refresh: 7200, Retry: 900, Expire: 1209600, MinTTL: 300,
		},
		&MXData{Preference: 10, Exchange: MustName("mail.example.com")},
		&TXTData{Strings: []string{"dlv=1", "v=spf1 -all"}},
		&TXTData{Strings: nil},
		&DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 13, PublicKey: bytes.Repeat([]byte{0xAB}, 64)},
		&DSData{KeyTag: 60485, Algorithm: 13, DigestType: 2, Digest: bytes.Repeat([]byte{0xCD}, 32)},
		&DLVData{KeyTag: 60485, Algorithm: 13, DigestType: 2, Digest: bytes.Repeat([]byte{0xEF}, 32)},
		&RRSIGData{
			TypeCovered: TypeNSEC, Algorithm: 13, Labels: 2, OriginalTTL: 3600,
			Expiration: 1800000000, Inception: 1790000000, KeyTag: 4711,
			SignerName: MustName("example.com"), Signature: bytes.Repeat([]byte{0x55}, 64),
		},
		&NSECData{NextName: MustName("zz.example.com"), Types: []Type{TypeA, TypeNS, TypeRRSIG, TypeNSEC, TypeDLV}},
		&NSEC3Data{
			HashAlgorithm: 1, Flags: 0, Iterations: 10, Salt: []byte{0xAA, 0xBB},
			NextHash: bytes.Repeat([]byte{0x11}, 20), Types: []Type{TypeA, TypeDS},
		},
		&RawData{T: Type(999), Data: []byte{9, 9, 9}},
	}
}

func TestAllRDataRoundTrip(t *testing.T) {
	owner := MustName("test.example.com")
	for _, d := range fixturePayloads() {
		t.Run(d.RType().String()+"/"+d.String(), func(t *testing.T) {
			m := &Message{
				Header:   Header{ID: 1, QR: true},
				Question: []Question{{Name: owner, Type: d.RType(), Class: ClassIN}},
				Answer:   []RR{{Name: owner, Type: d.RType(), Class: ClassIN, TTL: 60, Data: d}},
			}
			wire, err := m.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := DecodeMessage(wire)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if len(got.Answer) != 1 {
				t.Fatalf("got %d answers, want 1", len(got.Answer))
			}
			// TXT with no strings decodes as one empty string (the wire
			// format cannot express "zero strings" in non-empty RDATA).
			want := d
			if txt, ok := d.(*TXTData); ok && len(txt.Strings) == 0 {
				want = &TXTData{Strings: []string{""}}
			}
			if !reflect.DeepEqual(got.Answer[0].Data, want) {
				t.Fatalf("rdata mismatch:\nsent %#v\ngot  %#v", want, got.Answer[0].Data)
			}
		})
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	for mask := 0; mask < 1<<8; mask++ {
		h := Header{
			ID:    uint16(mask * 257),
			QR:    mask&1 != 0,
			AA:    mask&2 != 0,
			TC:    mask&4 != 0,
			RD:    mask&8 != 0,
			RA:    mask&16 != 0,
			Z:     mask&32 != 0,
			AD:    mask&64 != 0,
			CD:    mask&128 != 0,
			RCode: RCode(mask % 6),
		}
		m := &Message{Header: h}
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Header != h {
			t.Fatalf("header mismatch: sent %+v got %+v", h, got.Header)
		}
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	for _, do := range []bool{true, false} {
		m := NewQuery(9, MustName("example.com"), TypeDLV, true)
		m.EDNS.DO = do
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.EDNS == nil {
			t.Fatal("EDNS lost in roundtrip")
		}
		if got.EDNS.DO != do || got.EDNS.UDPSize != DefaultUDPSize {
			t.Fatalf("EDNS = %+v, want DO=%t size=%d", got.EDNS, do, DefaultUDPSize)
		}
		if got.DNSSECOK() != do {
			t.Fatalf("DNSSECOK() = %t, want %t", got.DNSSECOK(), do)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(wire); i++ {
		if _, err := DecodeMessage(wire[:i]); err == nil {
			t.Fatalf("DecodeMessage succeeded on %d-byte prefix of %d-byte message", i, len(wire))
		}
	}
}

func TestDecodeBadPointer(t *testing.T) {
	// Header + a question whose name is a self-referencing pointer.
	wire := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 12, // pointer to itself
		0, 1, 0, 1,
	}
	if _, err := DecodeMessage(wire); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("err = %v, want ErrBadPointer", err)
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prop := func(seed int64, size uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(size))
		rr.Read(buf)
		_, _ = DecodeMessage(buf) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestMutatedRoundTripNoPanic(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3000; trial++ {
		mut := make([]byte, len(wire))
		copy(mut, wire)
		for flips := 0; flips < 1+r.Intn(4); flips++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		_, _ = DecodeMessage(mut) // must not panic
	}
}

func TestTypeBitmapRoundTrip(t *testing.T) {
	prop := func(raw []uint16) bool {
		seen := map[Type]bool{}
		var types []Type
		for _, v := range raw {
			t := Type(v)
			if t == 0 || seen[t] {
				continue
			}
			seen[t] = true
			types = append(types, t)
		}
		d := &NSECData{NextName: MustName("next.example"), Types: types}
		enc, err := EncodeRData(d)
		if err != nil {
			return false
		}
		p := &parser{data: enc}
		got, err := decodeNSEC(p, len(enc))
		if err != nil {
			return false
		}
		SortTypes(types)
		if len(types) == 0 {
			return len(got.Types) == 0
		}
		return reflect.DeepEqual(got.Types, types)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRDataCanonicalNoCompression(t *testing.T) {
	// SOA contains two names sharing a suffix; canonical encoding must not
	// emit pointers.
	d := &SOAData{
		MName: MustName("ns1.example.com"), RName: MustName("admin.example.com"),
		Serial: 1, Refresh: 2, Retry: 3, Expire: 4, MinTTL: 5,
	}
	enc, err := EncodeRData(d)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := MustName("ns1.example.com").WireLen() + MustName("admin.example.com").WireLen() + 20
	if len(enc) != wantLen {
		t.Fatalf("canonical SOA rdata len = %d, want %d (uncompressed)", len(enc), wantLen)
	}
	for i := 0; i < len(enc)-1; i++ {
		if enc[i]&0xC0 == 0xC0 && i < MustName("ns1.example.com").WireLen()+MustName("admin.example.com").WireLen() {
			t.Fatalf("compression pointer found at offset %d in canonical rdata", i)
		}
	}
}

func TestEncodeName(t *testing.T) {
	got := EncodeName(MustName("ab.c"))
	want := []byte{2, 'a', 'b', 1, 'c', 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("EncodeName = %v, want %v", got, want)
	}
	if !bytes.Equal(EncodeName(Root), []byte{0}) {
		t.Fatalf("EncodeName(root) = %v", EncodeName(Root))
	}
}

func TestEncodeBadAddressFamilies(t *testing.T) {
	owner := MustName("x.example")
	bad := []RR{
		{Name: owner, Type: TypeA, Class: ClassIN, Data: &AData{Addr: netip.MustParseAddr("2001:db8::1")}},
		{Name: owner, Type: TypeAAAA, Class: ClassIN, Data: &AAAAData{Addr: netip.MustParseAddr("192.0.2.1")}},
	}
	for _, rr := range bad {
		m := &Message{Answer: []RR{rr}}
		if _, err := m.Encode(); !errors.Is(err, ErrBadRData) {
			t.Fatalf("Encode(%s) err = %v, want ErrBadRData", rr.Type, err)
		}
	}
}

// fixtureMessages returns every message shape the codec tests exercise:
// the compressed sample response, one answer message per RDATA fixture,
// queries with and without EDNS, a padded query, and degenerate headers.
func fixtureMessages() map[string]*Message {
	owner := MustName("test.example.com")
	fixtures := map[string]*Message{
		"sample":        sampleMessage(),
		"query-edns":    NewQuery(1, MustName("example.com"), TypeA, true),
		"query-plain":   NewQuery(2, MustName("example.com"), TypeDLV, false),
		"header-only":   {Header: Header{ID: 3, QR: true, AA: true, RCode: RCodeNXDomain}},
		"header-zbit":   {Header: Header{ID: 4, QR: true, Z: true, AD: true, CD: true}},
		"root-question": {Question: []Question{{Name: Root, Type: TypeNS, Class: ClassIN}}},
	}
	padded := NewQuery(5, MustName("pad-me.example.com"), TypeA, true)
	padded.EDNS.Padding = 37
	fixtures["query-padded"] = padded
	for i, d := range fixturePayloads() {
		m := &Message{
			Header:   Header{ID: 6, QR: true, AA: true},
			Question: []Question{{Name: owner, Type: d.RType(), Class: ClassIN}},
			Answer:   []RR{{Name: owner, Type: d.RType(), Class: ClassIN, TTL: 60, Data: d}},
		}
		fixtures[fmt.Sprintf("rdata-%d-%s", i, d.RType())] = m
	}
	return fixtures
}

func TestWireSizeMatchesEncode(t *testing.T) {
	for name, m := range fixtureMessages() {
		t.Run(name, func(t *testing.T) {
			n, err := m.WireSize()
			if err != nil {
				t.Fatal(err)
			}
			wire, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(wire) {
				t.Fatalf("WireSize = %d, Encode len = %d", n, len(wire))
			}
		})
	}
}

func TestEDNSPaddingRoundTrip(t *testing.T) {
	m := NewQuery(3, MustName("example.com"), TypeA, true)
	m.EDNS.Padding = 37
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.EDNS == nil || got.EDNS.Padding != 37 {
		t.Fatalf("EDNS after roundtrip = %+v", got.EDNS)
	}
	if !got.EDNS.DO {
		t.Fatal("DO bit lost alongside padding")
	}
}

func TestPadToBlock(t *testing.T) {
	for _, block := range []int{128, 468} {
		for _, withEDNS := range []bool{true, false} {
			m := NewQuery(9, MustName("pad-me.example.com"), TypeA, withEDNS)
			if err := m.PadToBlock(block); err != nil {
				t.Fatal(err)
			}
			size, err := m.WireSize()
			if err != nil {
				t.Fatal(err)
			}
			if size%block != 0 {
				t.Fatalf("block=%d edns=%t: padded size %d not aligned", block, withEDNS, size)
			}
		}
	}
	// Zero block is a no-op.
	m := NewQuery(9, MustName("x.example"), TypeA, true)
	before, _ := m.WireSize()
	if err := m.PadToBlock(0); err != nil {
		t.Fatal(err)
	}
	after, _ := m.WireSize()
	if before != after {
		t.Fatal("PadToBlock(0) changed the message")
	}
}

func TestPadToBlockAlreadyAligned(t *testing.T) {
	// Find a block size equal to the message size: no option is added.
	m := NewQuery(1, MustName("a.b"), TypeA, true)
	size, err := m.WireSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PadToBlock(size); err != nil {
		t.Fatal(err)
	}
	if m.EDNS.Padding != 0 {
		t.Fatalf("padding added to aligned message: %d", m.EDNS.Padding)
	}
}

func TestDecodeBadOPTOption(t *testing.T) {
	m := NewQuery(4, MustName("x.example"), TypeA, true)
	m.EDNS.Padding = 10
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Truncate inside the option payload: rdlength shrinks but the option
	// header claims more than remains.
	wire[len(wire)-12] = 0 // clobber the option length high byte region
	wire = append(wire[:len(wire)-10], wire[len(wire)-9:]...)
	_, _ = DecodeMessage(wire) // must not panic; error acceptable
}
