package dns

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

// genMessage is a quick.Generator producing arbitrary valid messages: random
// headers, questions, and record sections drawn from every supported type.
type genMessage struct {
	msg *Message
}

// Generate implements quick.Generator.
func (genMessage) Generate(r *rand.Rand, _ int) reflect.Value {
	m := &Message{
		Header: Header{
			ID:     uint16(r.Uint32()),
			QR:     r.Intn(2) == 0,
			Opcode: OpcodeQuery,
			AA:     r.Intn(2) == 0,
			RD:     r.Intn(2) == 0,
			RA:     r.Intn(2) == 0,
			Z:      r.Intn(2) == 0,
			AD:     r.Intn(2) == 0,
			CD:     r.Intn(2) == 0,
			RCode:  RCode(r.Intn(6)),
		},
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		m.Question = append(m.Question, Question{
			Name: genName(r), Type: genType(r), Class: ClassIN,
		})
	}
	fill := func(out *[]RR, max int) {
		for i := 0; i < r.Intn(max+1); i++ {
			*out = append(*out, genRR(r))
		}
	}
	fill(&m.Answer, 4)
	fill(&m.Authority, 3)
	fill(&m.Additional, 3)
	if r.Intn(2) == 0 {
		m.EDNS = &EDNS{UDPSize: 512 + uint16(r.Intn(4096)), DO: r.Intn(2) == 0, Padding: r.Intn(64)}
	}
	return reflect.ValueOf(genMessage{msg: m})
}

func genName(r *rand.Rand) Name {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	labels := 1 + r.Intn(4)
	s := ""
	for i := 0; i < labels; i++ {
		if i > 0 {
			s += "."
		}
		n := 1 + r.Intn(10)
		for j := 0; j < n; j++ {
			s += string(alphabet[r.Intn(len(alphabet))])
		}
	}
	return MustName(s)
}

var genTypes = []Type{
	TypeA, TypeAAAA, TypeNS, TypeCNAME, TypeSOA, TypePTR, TypeMX, TypeTXT,
	TypeDNSKEY, TypeDS, TypeDLV, TypeRRSIG, TypeNSEC, TypeNSEC3,
}

func genType(r *rand.Rand) Type { return genTypes[r.Intn(len(genTypes))] }

func genBytes(r *rand.Rand, max int) []byte {
	b := make([]byte, 1+r.Intn(max))
	r.Read(b)
	return b
}

func genRR(r *rand.Rand) RR {
	name := genName(r)
	ttl := uint32(r.Intn(86400))
	var data RData
	switch genType(r) {
	case TypeA:
		var a [4]byte
		r.Read(a[:])
		data = &AData{Addr: netip.AddrFrom4(a)}
	case TypeAAAA:
		var a [16]byte
		r.Read(a[:])
		a[0] = 0x20 // keep it out of the v4-mapped range
		data = &AAAAData{Addr: netip.AddrFrom16(a)}
	case TypeNS:
		data = &NSData{Target: genName(r)}
	case TypeCNAME:
		data = &CNAMEData{Target: genName(r)}
	case TypeSOA:
		data = &SOAData{
			MName: genName(r), RName: genName(r),
			Serial: r.Uint32(), Refresh: r.Uint32(), Retry: r.Uint32(),
			Expire: r.Uint32(), MinTTL: r.Uint32(),
		}
	case TypePTR:
		data = &PTRData{Target: genName(r)}
	case TypeMX:
		data = &MXData{Preference: uint16(r.Uint32()), Exchange: genName(r)}
	case TypeTXT:
		strs := make([]string, 1+r.Intn(3))
		for i := range strs {
			strs[i] = string(genBytes(r, 50))
		}
		data = &TXTData{Strings: strs}
	case TypeDNSKEY:
		data = &DNSKEYData{Flags: uint16(r.Uint32()), Protocol: 3, Algorithm: uint8(r.Uint32()), PublicKey: genBytes(r, 64)}
	case TypeDS:
		data = &DSData{KeyTag: uint16(r.Uint32()), Algorithm: uint8(r.Uint32()), DigestType: uint8(r.Uint32()), Digest: genBytes(r, 32)}
	case TypeDLV:
		data = &DLVData{KeyTag: uint16(r.Uint32()), Algorithm: uint8(r.Uint32()), DigestType: uint8(r.Uint32()), Digest: genBytes(r, 32)}
	case TypeRRSIG:
		data = &RRSIGData{
			TypeCovered: genType(r), Algorithm: uint8(r.Uint32()), Labels: uint8(r.Intn(8)),
			OriginalTTL: r.Uint32(), Expiration: r.Uint32(), Inception: r.Uint32(),
			KeyTag: uint16(r.Uint32()), SignerName: genName(r), Signature: genBytes(r, 64),
		}
	case TypeNSEC:
		types := make([]Type, 1+r.Intn(5))
		seen := map[Type]bool{}
		out := types[:0]
		for range types {
			t := genType(r)
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		SortTypes(out)
		data = &NSECData{NextName: genName(r), Types: out}
	default: // NSEC3
		data = &NSEC3Data{
			HashAlgorithm: 1, Flags: uint8(r.Intn(2)), Iterations: uint16(r.Intn(100)),
			Salt: genBytes(r, 8), NextHash: genBytes(r, 20), Types: []Type{TypeA},
		}
	}
	return RR{Name: name, Type: data.RType(), Class: ClassIN, TTL: ttl, Data: data}
}

// TestRandomMessageRoundTrip: encode(decode(encode(m))) is stable for any
// generated message, and decode(encode(m)) preserves the question and the
// section record keys.
func TestRandomMessageRoundTrip(t *testing.T) {
	prop := func(g genMessage) bool {
		m := g.msg
		wire, err := m.Encode()
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		back, err := DecodeMessage(wire)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if back.Header != m.Header {
			t.Logf("header mismatch: %+v vs %+v", back.Header, m.Header)
			return false
		}
		if len(back.Question) != len(m.Question) ||
			len(back.Answer) != len(m.Answer) ||
			len(back.Authority) != len(m.Authority) ||
			len(back.Additional) != len(m.Additional) {
			t.Log("section length mismatch")
			return false
		}
		for i := range m.Answer {
			if back.Answer[i].Key() != m.Answer[i].Key() {
				t.Logf("answer %d key mismatch", i)
				return false
			}
		}
		// Second roundtrip must be byte-identical (canonical encoding).
		wire2, err := back.Encode()
		if err != nil {
			return false
		}
		if len(wire) != len(wire2) {
			t.Logf("re-encode size changed: %d vs %d", len(wire), len(wire2))
			return false
		}
		for i := range wire {
			if wire[i] != wire2[i] {
				t.Logf("re-encode differs at byte %d", i)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
