package dns

import (
	"fmt"
	"strings"
)

// Question is the query section entry.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String implements fmt.Stringer.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Header carries the fixed DNS header flags. The Z field is the reserved
// bit between RA and RCODE (RFC 1035 §4.1.1, narrowed by RFC 2535/4035 to a
// single bit once AD and CD were assigned); the paper's "DLV-aware DNS"
// remedy repurposes it to signal that the answered domain has a DLV record
// deposited.
type Header struct {
	ID     uint16
	QR     bool // response flag
	Opcode Opcode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	Z      bool // reserved bit; used by the Z-bit remedy
	AD     bool // authenticated data
	CD     bool // checking disabled
	RCode  RCode
}

// EDNS carries the EDNS0 OPT pseudo-record state (RFC 6891): the
// advertised UDP payload size, the DO ("DNSSEC OK") bit, and the RFC 7830
// padding option used by the size-side-channel mitigation the paper's
// related work discusses.
type EDNS struct {
	UDPSize uint16
	DO      bool
	// Padding is the number of zero octets carried in the RFC 7830
	// padding option; 0 means no padding option is present.
	Padding int
}

// DefaultUDPSize is the EDNS0 buffer size advertised by the resolver.
const DefaultUDPSize = 4096

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
	// EDNS is non-nil when the message carries an OPT record.
	EDNS *EDNS
}

// NewQuery builds a standard recursive-desired query for (name, type) with
// EDNS0 and the DO bit set when dnssecOK is true.
func NewQuery(id uint16, name Name, qtype Type, dnssecOK bool) *Message {
	m := &Message{
		Header: Header{
			ID:     id,
			Opcode: OpcodeQuery,
			RD:     true,
		},
		Question: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
	if dnssecOK {
		m.EDNS = &EDNS{UDPSize: DefaultUDPSize, DO: true}
	}
	return m
}

// NewResponse builds a response skeleton mirroring the query's ID, question,
// opcode, RD flag, and EDNS state.
func NewResponse(q *Message) *Message {
	r := &Message{
		Header: Header{
			ID:     q.Header.ID,
			QR:     true,
			Opcode: q.Header.Opcode,
			RD:     q.Header.RD,
		},
	}
	r.Question = append(r.Question, q.Question...)
	if q.EDNS != nil {
		r.EDNS = &EDNS{UDPSize: DefaultUDPSize, DO: q.EDNS.DO}
	}
	return r
}

// DNSSECOK reports whether the message advertises DNSSEC support (EDNS0 DO).
func (m *Message) DNSSECOK() bool { return m.EDNS != nil && m.EDNS.DO }

// Clone returns a structurally independent copy of m: fresh section slices
// and EDNS state, so the caller may mutate headers and append to sections
// without affecting m. RData payloads are shared — they are treated as
// immutable throughout the codebase (zone storage hands out the same
// pointers). Packet caches rely on this to serve one stored response to
// many concurrent clients.
func (m *Message) Clone() *Message {
	c := &Message{Header: m.Header}
	if m.Question != nil {
		c.Question = make([]Question, len(m.Question))
		copy(c.Question, m.Question)
	}
	c.Answer = cloneRRs(m.Answer)
	c.Authority = cloneRRs(m.Authority)
	c.Additional = cloneRRs(m.Additional)
	if m.EDNS != nil {
		e := *m.EDNS
		c.EDNS = &e
	}
	return c
}

func cloneRRs(rrs []RR) []RR {
	if rrs == nil {
		return nil
	}
	out := make([]RR, len(rrs))
	copy(out, rrs)
	return out
}

// PadToBlock sets the RFC 7830 padding so the encoded message length is a
// multiple of block (RFC 8467 recommends 128 for queries, 468 for
// responses). Messages without EDNS gain an OPT record.
func (m *Message) PadToBlock(block int) error {
	if block <= 0 {
		return nil
	}
	if m.EDNS == nil {
		m.EDNS = &EDNS{UDPSize: DefaultUDPSize}
	}
	m.EDNS.Padding = 0
	size, err := m.WireSize()
	if err != nil {
		return err
	}
	if size%block == 0 {
		return nil // already aligned without the option
	}
	// Any padding costs a 4-octet option header; pad up to the next block
	// boundary past it.
	withHeader := size + 4
	target := (withHeader + block - 1) / block * block
	m.EDNS.Padding = target - withHeader
	return nil
}

// QName returns the first question name, or the root if there is none.
func (m *Message) QName() Name {
	if len(m.Question) == 0 {
		return Root
	}
	return m.Question[0].Name
}

// QType returns the first question type, or 0 if there is none.
func (m *Message) QType() Type {
	if len(m.Question) == 0 {
		return 0
	}
	return m.Question[0].Type
}

// AnswerRRSet returns the answer-section records of the given name and type.
func (m *Message) AnswerRRSet(name Name, t Type) []RR {
	return filterRRs(m.Answer, name, t)
}

// AuthorityRRSet returns the authority-section records of the given name and
// type.
func (m *Message) AuthorityRRSet(name Name, t Type) []RR {
	return filterRRs(m.Authority, name, t)
}

// AuthorityByType returns all authority-section records of type t regardless
// of owner name (used to collect NSEC proofs).
func (m *Message) AuthorityByType(t Type) []RR {
	var out []RR
	for _, rr := range m.Authority {
		if rr.Type == t {
			out = append(out, rr)
		}
	}
	return out
}

func filterRRs(rrs []RR, name Name, t Type) []RR {
	var out []RR
	for _, rr := range rrs {
		if rr.Name == name && rr.Type == t {
			out = append(out, rr)
		}
	}
	return out
}

// String renders the message in a dig-like multi-line presentation form.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; id=%d %s qr=%t aa=%t tc=%t rd=%t ra=%t z=%t ad=%t cd=%t rcode=%s\n",
		m.Header.ID, m.Header.Opcode, m.Header.QR, m.Header.AA, m.Header.TC,
		m.Header.RD, m.Header.RA, m.Header.Z, m.Header.AD, m.Header.CD, m.Header.RCode)
	if m.EDNS != nil {
		fmt.Fprintf(&b, ";; edns: udp=%d do=%t\n", m.EDNS.UDPSize, m.EDNS.DO)
	}
	for _, q := range m.Question {
		fmt.Fprintf(&b, ";%s\n", q)
	}
	writeSection := func(label string, rrs []RR) {
		if len(rrs) == 0 {
			return
		}
		fmt.Fprintf(&b, ";; %s:\n", label)
		for _, rr := range rrs {
			fmt.Fprintf(&b, "%s\n", rr)
		}
	}
	writeSection("ANSWER", m.Answer)
	writeSection("AUTHORITY", m.Authority)
	writeSection("ADDITIONAL", m.Additional)
	return b.String()
}
