package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
)

// Wire codec errors.
var (
	ErrTruncatedMessage = errors.New("dns: truncated message")
	ErrBadPointer       = errors.New("dns: bad compression pointer")
	ErrRDataTooLong     = errors.New("dns: rdata exceeds 65535 octets")
	ErrBadRData         = errors.New("dns: malformed rdata")
)

// header flag bit masks within the 16-bit flags word.
const (
	flagQR uint16 = 1 << 15
	flagAA uint16 = 1 << 10
	flagTC uint16 = 1 << 9
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
	flagZ  uint16 = 1 << 6
	flagAD uint16 = 1 << 5
	flagCD uint16 = 1 << 4
)

// ednsFlagDO is the DO bit inside the OPT TTL field.
const ednsFlagDO uint32 = 1 << 15

// builder accumulates wire-format output with RFC 1035 name compression.
// In measure mode nothing is written: only vlen advances, so WireSize can
// compute exact encoded sizes (compression included) without building bytes.
type builder struct {
	buf        []byte
	compress   map[Name]int
	noCompress bool
	measure    bool
	vlen       int
}

// builderPool recycles builders across Encode calls; every simulated
// exchange encodes (and re-encodes) messages, so the buffer and compression
// map are hot allocations.
var builderPool = sync.Pool{
	New: func() any {
		return &builder{buf: make([]byte, 0, 512), compress: make(map[Name]int)}
	},
}

func newBuilder() *builder {
	b := builderPool.Get().(*builder)
	b.buf = b.buf[:0]
	b.noCompress = false
	b.measure = false
	b.vlen = 0
	clear(b.compress)
	return b
}

// release returns the builder to the pool. The caller must not touch b.buf
// afterwards; Encode copies the bytes out before releasing.
func (b *builder) release() {
	builderPool.Put(b)
}

// len returns the current output offset in both modes; compression targets
// depend on it, so measure-mode sizes match real encodings exactly.
func (b *builder) len() int {
	if b.measure {
		return b.vlen
	}
	return len(b.buf)
}

func (b *builder) putUint8(v uint8) {
	if b.measure {
		b.vlen++
		return
	}
	b.buf = append(b.buf, v)
}

func (b *builder) putUint16(v uint16) {
	if b.measure {
		b.vlen += 2
		return
	}
	b.buf = binary.BigEndian.AppendUint16(b.buf, v)
}

func (b *builder) putUint32(v uint32) {
	if b.measure {
		b.vlen += 4
		return
	}
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
}

func (b *builder) putBytes(p []byte) {
	if b.measure {
		b.vlen += len(p)
		return
	}
	b.buf = append(b.buf, p...)
}

// putString appends the raw bytes of s without a []byte conversion.
func (b *builder) putString(s string) {
	if b.measure {
		b.vlen += len(s)
		return
	}
	b.buf = append(b.buf, s...)
}

// putZeros appends n zero octets (RFC 7830 padding) without allocating a
// scratch slice.
func (b *builder) putZeros(n int) {
	if b.measure {
		b.vlen += n
		return
	}
	for ; n >= len(zeroOctets); n -= len(zeroOctets) {
		b.buf = append(b.buf, zeroOctets[:]...)
	}
	b.buf = append(b.buf, zeroOctets[:n]...)
}

var zeroOctets [64]byte

// putName appends a domain name, using a compression pointer to an earlier
// occurrence when allowed. Compression targets must be at offsets
// representable in 14 bits.
func (b *builder) putName(n Name, allowCompress bool) {
	if b.noCompress {
		allowCompress = false
	}
	for !n.IsRoot() {
		if allowCompress {
			if off, ok := b.compress[n]; ok {
				b.putUint16(0xC000 | uint16(off))
				return
			}
		}
		if off := b.len(); b.compress != nil && off < 0x4000 {
			b.compress[n] = off
		}
		label := n.FirstLabel()
		b.putUint8(uint8(len(label)))
		b.putString(label)
		n = n.Parent()
	}
	b.putUint8(0)
}

// Encode serializes the message to RFC 1035 wire format. An OPT record is
// appended to the additional section when m.EDNS is non-nil.
func (m *Message) Encode() ([]byte, error) {
	b := newBuilder()
	defer b.release()
	if err := m.encodeTo(b); err != nil {
		return nil, err
	}
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out, nil
}

// AppendEncode appends the wire encoding of m to dst and returns the
// extended slice. Exchange hot paths use it with pooled buffers so encoding
// a message costs no allocation beyond dst's own growth.
func (m *Message) AppendEncode(dst []byte) ([]byte, error) {
	b := newBuilder()
	defer b.release()
	if err := m.encodeTo(b); err != nil {
		return nil, err
	}
	return append(dst, b.buf...), nil
}

// encodeTo writes the full message into b.
func (m *Message) encodeTo(b *builder) error {
	var flags uint16
	h := m.Header
	if h.QR {
		flags |= flagQR
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		flags |= flagAA
	}
	if h.TC {
		flags |= flagTC
	}
	if h.RD {
		flags |= flagRD
	}
	if h.RA {
		flags |= flagRA
	}
	if h.Z {
		flags |= flagZ
	}
	if h.AD {
		flags |= flagAD
	}
	if h.CD {
		flags |= flagCD
	}
	flags |= uint16(h.RCode & 0xF)

	arcount := len(m.Additional)
	if m.EDNS != nil {
		arcount++
	}
	b.putUint16(h.ID)
	b.putUint16(flags)
	b.putUint16(uint16(len(m.Question)))
	b.putUint16(uint16(len(m.Answer)))
	b.putUint16(uint16(len(m.Authority)))
	b.putUint16(uint16(arcount))

	for _, q := range m.Question {
		b.putName(q.Name, true)
		b.putUint16(uint16(q.Type))
		b.putUint16(uint16(q.Class))
	}
	for _, rr := range m.Answer {
		if err := encodeRR(b, rr); err != nil {
			return err
		}
	}
	for _, rr := range m.Authority {
		if err := encodeRR(b, rr); err != nil {
			return err
		}
	}
	for _, rr := range m.Additional {
		if err := encodeRR(b, rr); err != nil {
			return err
		}
	}
	if m.EDNS != nil {
		encodeOPT(b, m.EDNS)
	}
	return nil
}

// WireSize returns the encoded size of the message in octets without
// building the bytes: the pooled builder runs in measure mode, advancing
// only an offset (compression pointers included), so the hot PadToBlock
// path allocates nothing.
func (m *Message) WireSize() (int, error) {
	b := newBuilder()
	defer b.release()
	b.measure = true
	if err := m.encodeTo(b); err != nil {
		return 0, err
	}
	return b.vlen, nil
}

func encodeRR(b *builder, rr RR) error {
	b.putName(rr.Name, true)
	b.putUint16(uint16(rr.Type))
	b.putUint16(uint16(rr.Class))
	b.putUint32(rr.TTL)
	lenOff := b.len()
	b.putUint16(0) // RDLENGTH placeholder
	if err := encodeRData(b, rr.Data); err != nil {
		return fmt.Errorf("encoding %s: %w", rr.Key(), err)
	}
	rdlen := b.len() - lenOff - 2
	if rdlen > 0xFFFF {
		return fmt.Errorf("%w: %s", ErrRDataTooLong, rr.Key())
	}
	if !b.measure {
		binary.BigEndian.PutUint16(b.buf[lenOff:], uint16(rdlen))
	}
	return nil
}

// ednsOptionPadding is the RFC 7830 option code.
const ednsOptionPadding = 12

func encodeOPT(b *builder, e *EDNS) {
	b.putUint8(0) // root owner name
	b.putUint16(uint16(TypeOPT))
	b.putUint16(e.UDPSize)
	var ttl uint32
	if e.DO {
		ttl |= ednsFlagDO
	}
	b.putUint32(ttl)
	if e.Padding <= 0 {
		b.putUint16(0) // empty RDATA
		return
	}
	b.putUint16(uint16(4 + e.Padding))
	b.putUint16(ednsOptionPadding)
	b.putUint16(uint16(e.Padding))
	b.putZeros(e.Padding)
}

// encodeRData appends the payload in wire format. Name compression inside
// RDATA is used only for the types RFC 1035 permits (NS, CNAME, SOA, PTR,
// MX); DNSSEC-era types always embed uncompressed names (RFC 3597 §4).
func encodeRData(b *builder, d RData) error {
	switch v := d.(type) {
	case *AData:
		if !v.Addr.Is4() {
			return fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRData, v.Addr)
		}
		a := v.Addr.As4()
		b.putBytes(a[:])
	case *AAAAData:
		if !v.Addr.Is6() || v.Addr.Is4() {
			return fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRData, v.Addr)
		}
		a := v.Addr.As16()
		b.putBytes(a[:])
	case *NSData:
		b.putName(v.Target, true)
	case *CNAMEData:
		b.putName(v.Target, true)
	case *PTRData:
		b.putName(v.Target, true)
	case *SOAData:
		b.putName(v.MName, true)
		b.putName(v.RName, true)
		b.putUint32(v.Serial)
		b.putUint32(v.Refresh)
		b.putUint32(v.Retry)
		b.putUint32(v.Expire)
		b.putUint32(v.MinTTL)
	case *MXData:
		b.putUint16(v.Preference)
		b.putName(v.Exchange, true)
	case *TXTData:
		if len(v.Strings) == 0 {
			b.putUint8(0)
			return nil
		}
		for _, s := range v.Strings {
			if len(s) > 255 {
				return fmt.Errorf("%w: TXT string exceeds 255 octets", ErrBadRData)
			}
			b.putUint8(uint8(len(s)))
			b.putString(s)
		}
	case *DNSKEYData:
		b.putUint16(v.Flags)
		b.putUint8(v.Protocol)
		b.putUint8(v.Algorithm)
		b.putBytes(v.PublicKey)
	case *DSData:
		b.putUint16(v.KeyTag)
		b.putUint8(v.Algorithm)
		b.putUint8(v.DigestType)
		b.putBytes(v.Digest)
	case *DLVData:
		b.putUint16(v.KeyTag)
		b.putUint8(v.Algorithm)
		b.putUint8(v.DigestType)
		b.putBytes(v.Digest)
	case *RRSIGData:
		b.putUint16(uint16(v.TypeCovered))
		b.putUint8(v.Algorithm)
		b.putUint8(v.Labels)
		b.putUint32(v.OriginalTTL)
		b.putUint32(v.Expiration)
		b.putUint32(v.Inception)
		b.putUint16(v.KeyTag)
		b.putName(v.SignerName, false)
		b.putBytes(v.Signature)
	case *NSECData:
		b.putName(v.NextName, false)
		encodeTypeBitmap(b, v.Types)
	case *NSEC3Data:
		b.putUint8(v.HashAlgorithm)
		b.putUint8(v.Flags)
		b.putUint16(v.Iterations)
		if len(v.Salt) > 255 {
			return fmt.Errorf("%w: NSEC3 salt exceeds 255 octets", ErrBadRData)
		}
		b.putUint8(uint8(len(v.Salt)))
		b.putBytes(v.Salt)
		if len(v.NextHash) > 255 {
			return fmt.Errorf("%w: NSEC3 hash exceeds 255 octets", ErrBadRData)
		}
		b.putUint8(uint8(len(v.NextHash)))
		b.putBytes(v.NextHash)
		encodeTypeBitmap(b, v.Types)
	case *RawData:
		b.putBytes(v.Data)
	default:
		return fmt.Errorf("%w: unsupported rdata %T", ErrBadRData, d)
	}
	return nil
}

// EncodeRData returns the uncompressed wire form of a payload, suitable as
// canonical RDATA for DNSSEC signing and digesting (RFC 4034 §6.2 forbids
// compression in canonical form).
func EncodeRData(d RData) ([]byte, error) {
	b := &builder{buf: make([]byte, 0, 64), noCompress: true}
	if err := encodeRData(b, d); err != nil {
		return nil, err
	}
	return b.buf, nil
}

// EncodeName returns the uncompressed wire form of a name.
func EncodeName(n Name) []byte {
	b := &builder{buf: make([]byte, 0, 32), noCompress: true}
	b.putName(n, false)
	return b.buf
}

// AppendRData appends the canonical wire encoding of an RDATA to dst and
// returns the extended slice; the allocation-free sibling of EncodeRData.
func AppendRData(dst []byte, d RData) ([]byte, error) {
	b := builder{buf: dst, noCompress: true}
	if err := encodeRData(&b, d); err != nil {
		return dst, err
	}
	return b.buf, nil
}

// AppendName appends the uncompressed wire form of a name to dst.
func AppendName(dst []byte, n Name) []byte {
	b := builder{buf: dst, noCompress: true}
	b.putName(n, false)
	return b.buf
}

// encodeTypeBitmap appends the RFC 4034 §4.1.2 window-block type bitmap.
func encodeTypeBitmap(b *builder, types []Type) {
	if len(types) == 0 {
		return
	}
	sorted := make([]Type, len(types))
	copy(sorted, types)
	SortTypes(sorted)

	var window = -1
	var bitmap [32]byte
	var maxOctet int
	flush := func() {
		if window < 0 {
			return
		}
		b.putUint8(uint8(window))
		b.putUint8(uint8(maxOctet + 1))
		b.putBytes(bitmap[:maxOctet+1])
	}
	for _, t := range sorted {
		w := int(t >> 8)
		if w != window {
			flush()
			window = w
			bitmap = [32]byte{}
			maxOctet = 0
		}
		pos := int(t & 0xFF)
		octet := pos / 8
		bitmap[octet] |= 0x80 >> (pos % 8)
		if octet > maxOctet {
			maxOctet = octet
		}
	}
	flush()
}

// parser consumes wire-format input. reference selects the original
// allocate-per-label name decoding; the default fast path interns names.
// Both must agree on every input (pinned by FuzzDecodeDifferential).
type parser struct {
	data      []byte
	off       int
	reference bool
}

func (p *parser) remaining() int { return len(p.data) - p.off }

func (p *parser) uint8() (uint8, error) {
	if p.remaining() < 1 {
		return 0, ErrTruncatedMessage
	}
	v := p.data[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if p.remaining() < 2 {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint16(p.data[p.off:])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if p.remaining() < 4 {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint32(p.data[p.off:])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	if n < 0 || p.remaining() < n {
		return nil, ErrTruncatedMessage
	}
	v := p.data[p.off : p.off+n]
	p.off += n
	return v, nil
}

// name reads a possibly-compressed domain name starting at the current
// offset, following pointers with a hop limit. The fast path assembles the
// lowercased presentation text in a stack buffer and resolves it through the
// intern table, so decoding a hot name allocates nothing; validation falls
// back to MakeName, keeping accepted inputs and errors identical to the
// reference path.
func (p *parser) name() (Name, error) {
	if p.reference {
		return p.nameReference()
	}
	// text holds the lowercased dotted form including the trailing dot;
	// its length equals the wire-format name length, bounded by maxNameLen.
	var text [maxNameLen]byte
	n := 0
	off := p.off
	jumped := false
	hops := 0
	total := 0
	for {
		if off >= len(p.data) {
			return "", ErrTruncatedMessage
		}
		c := p.data[off]
		switch {
		case c == 0:
			if !jumped {
				p.off = off + 1
			}
			if n == 0 {
				return Root, nil
			}
			// Strip the trailing separator: the reference decoder joins
			// labels with dots *between* them before MakeName, and for
			// hostile labels that themselves contain '.' the two texts
			// must stay byte-identical to accept and reject alike.
			return internName(text[:n-1])
		case c&0xC0 == 0xC0:
			if off+1 >= len(p.data) {
				return "", ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(p.data[off:]) & 0x3FFF)
			if !jumped {
				p.off = off + 2
				jumped = true
			}
			hops++
			if hops > 32 || ptr >= off {
				return "", ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return "", fmt.Errorf("%w: label type %#x", ErrBadPointer, c&0xC0)
		default:
			l := int(c)
			if off+1+l > len(p.data) {
				return "", ErrTruncatedMessage
			}
			total += l + 1
			if total > maxNameLen {
				return "", ErrNameTooLong
			}
			for _, ch := range p.data[off+1 : off+1+l] {
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				text[n] = ch
				n++
			}
			text[n] = '.'
			n++
			off += 1 + l
		}
	}
}

// nameReference is the seed decoder's name path, retained as the
// differential-fuzz oracle for the interning fast path.
func (p *parser) nameReference() (Name, error) {
	var labels []string
	off := p.off
	jumped := false
	hops := 0
	total := 0
	for {
		if off >= len(p.data) {
			return "", ErrTruncatedMessage
		}
		c := p.data[off]
		switch {
		case c == 0:
			if !jumped {
				p.off = off + 1
			}
			if len(labels) == 0 {
				return Root, nil
			}
			n, err := MakeName(joinLabels(labels))
			if err != nil {
				return "", fmt.Errorf("decoding name: %w", err)
			}
			return n, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(p.data) {
				return "", ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(p.data[off:]) & 0x3FFF)
			if !jumped {
				p.off = off + 2
				jumped = true
			}
			hops++
			if hops > 32 || ptr >= off {
				return "", ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return "", fmt.Errorf("%w: label type %#x", ErrBadPointer, c&0xC0)
		default:
			n := int(c)
			if off+1+n > len(p.data) {
				return "", ErrTruncatedMessage
			}
			total += n + 1
			if total > maxNameLen {
				return "", ErrNameTooLong
			}
			labels = append(labels, string(p.data[off+1:off+1+n]))
			off += 1 + n
		}
	}
}

func joinLabels(labels []string) string {
	out := labels[0]
	for _, l := range labels[1:] {
		out += "." + l
	}
	return out
}

// DecodeMessage parses a wire-format DNS message. OPT records found in the
// additional section are lifted into Message.EDNS.
func DecodeMessage(data []byte) (*Message, error) {
	return decodeMessage(data, false)
}

// decodeMessageReference decodes with the seed-era per-label allocation
// path; FuzzDecodeDifferential uses it as the oracle for the fast path.
func decodeMessageReference(data []byte) (*Message, error) {
	return decodeMessage(data, true)
}

func decodeMessage(data []byte, reference bool) (*Message, error) {
	p := &parser{data: data, reference: reference}
	m := &Message{}

	id, err := p.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := p.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:     id,
		QR:     flags&flagQR != 0,
		Opcode: Opcode(flags >> 11 & 0xF),
		AA:     flags&flagAA != 0,
		TC:     flags&flagTC != 0,
		RD:     flags&flagRD != 0,
		RA:     flags&flagRA != 0,
		Z:      flags&flagZ != 0,
		AD:     flags&flagAD != 0,
		CD:     flags&flagCD != 0,
		RCode:  RCode(flags & 0xF),
	}
	qd, err := p.uint16()
	if err != nil {
		return nil, err
	}
	an, err := p.uint16()
	if err != nil {
		return nil, err
	}
	ns, err := p.uint16()
	if err != nil {
		return nil, err
	}
	ar, err := p.uint16()
	if err != nil {
		return nil, err
	}

	if qd > 0 {
		// Pre-size from the header count, clamped by what the remaining
		// bytes could possibly hold (a question is at least 5 octets), so
		// a forged count cannot force a huge allocation.
		m.Question = make([]Question, 0, clampCount(int(qd), p.remaining()/5+1))
	}
	for i := 0; i < int(qd); i++ {
		qname, err := p.name()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		qtype, err := p.uint16()
		if err != nil {
			return nil, err
		}
		qclass, err := p.uint16()
		if err != nil {
			return nil, err
		}
		m.Question = append(m.Question, Question{Name: qname, Type: Type(qtype), Class: Class(qclass)})
	}

	decodeSection := func(count int, section string) ([]RR, error) {
		var rrs []RR
		if count > 0 {
			// An RR is at least 11 octets (root owner, fixed header, empty
			// RDATA); clamp like the question section.
			rrs = make([]RR, 0, clampCount(count, p.remaining()/11+1))
		}
		for i := 0; i < count; i++ {
			rr, isOPT, err := decodeRR(p, m)
			if err != nil {
				return nil, fmt.Errorf("%s record %d: %w", section, i, err)
			}
			if !isOPT {
				rrs = append(rrs, rr)
			}
		}
		if len(rrs) == 0 {
			// Keep nil sections nil (an OPT-only additional section must
			// decode identically to the seed path).
			return nil, nil
		}
		return rrs, nil
	}
	if m.Answer, err = decodeSection(int(an), "answer"); err != nil {
		return nil, err
	}
	if m.Authority, err = decodeSection(int(ns), "authority"); err != nil {
		return nil, err
	}
	if m.Additional, err = decodeSection(int(ar), "additional"); err != nil {
		return nil, err
	}
	return m, nil
}

// clampCount bounds a header-declared entry count by a plausibility limit.
func clampCount(count, limit int) int {
	if count > limit {
		return limit
	}
	return count
}

// DecodeQuestion parses only the header and first question of a wire
// message — everything exchange routing and capture need — without
// materializing resource records. A message without questions yields the
// zero Question and no error; truncated or malformed question bytes fail
// exactly as DecodeMessage would.
func DecodeQuestion(data []byte) (Question, error) {
	if len(data) < 12 {
		return Question{}, ErrTruncatedMessage
	}
	if binary.BigEndian.Uint16(data[4:6]) == 0 {
		return Question{}, nil
	}
	p := &parser{data: data, off: 12}
	qname, err := p.name()
	if err != nil {
		return Question{}, fmt.Errorf("question 0: %w", err)
	}
	qtype, err := p.uint16()
	if err != nil {
		return Question{}, err
	}
	qclass, err := p.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: qname, Type: Type(qtype), Class: Class(qclass)}, nil
}

// decodeRR parses one resource record; OPT records are absorbed into
// m.EDNS and signaled via isOPT.
func decodeRR(p *parser, m *Message) (rr RR, isOPT bool, err error) {
	name, err := p.name()
	if err != nil {
		return RR{}, false, err
	}
	t, err := p.uint16()
	if err != nil {
		return RR{}, false, err
	}
	class, err := p.uint16()
	if err != nil {
		return RR{}, false, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return RR{}, false, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return RR{}, false, err
	}
	if Type(t) == TypeOPT {
		raw, err := p.bytes(int(rdlen))
		if err != nil {
			return RR{}, false, err
		}
		e := &EDNS{UDPSize: class, DO: ttl&ednsFlagDO != 0}
		// Walk the options list for the padding option.
		for off := 0; off+4 <= len(raw); {
			code := binary.BigEndian.Uint16(raw[off:])
			olen := int(binary.BigEndian.Uint16(raw[off+2:]))
			if off+4+olen > len(raw) {
				return RR{}, false, fmt.Errorf("%w: OPT option overruns rdata", ErrBadRData)
			}
			if code == ednsOptionPadding {
				e.Padding = olen
			}
			off += 4 + olen
		}
		m.EDNS = e
		return RR{}, true, nil
	}
	end := p.off + int(rdlen)
	if end > len(p.data) {
		return RR{}, false, ErrTruncatedMessage
	}
	data, err := decodeRData(p, Type(t), end)
	if err != nil {
		return RR{}, false, err
	}
	if p.off != end {
		return RR{}, false, fmt.Errorf("%w: %d trailing rdata octets in %s record",
			ErrBadRData, end-p.off, Type(t))
	}
	return RR{Name: name, Type: Type(t), Class: Class(class), TTL: ttl, Data: data}, false, nil
}

func decodeRData(p *parser, t Type, end int) (RData, error) {
	switch t {
	case TypeA:
		raw, err := p.bytes(4)
		if err != nil {
			return nil, err
		}
		return &AData{Addr: netip.AddrFrom4([4]byte(raw))}, nil
	case TypeAAAA:
		raw, err := p.bytes(16)
		if err != nil {
			return nil, err
		}
		return &AAAAData{Addr: netip.AddrFrom16([16]byte(raw))}, nil
	case TypeNS:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &NSData{Target: n}, nil
	case TypeCNAME:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &CNAMEData{Target: n}, nil
	case TypePTR:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &PTRData{Target: n}, nil
	case TypeSOA:
		return decodeSOA(p)
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return nil, err
		}
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &MXData{Preference: pref, Exchange: n}, nil
	case TypeTXT:
		return decodeTXT(p, end)
	case TypeDNSKEY:
		return decodeDNSKEY(p, end)
	case TypeDS:
		f, err := decodeDSFields(p, end)
		if err != nil {
			return nil, err
		}
		return (*DSData)(f), nil
	case TypeDLV:
		f, err := decodeDSFields(p, end)
		if err != nil {
			return nil, err
		}
		return (*DLVData)(f), nil
	case TypeRRSIG:
		return decodeRRSIG(p, end)
	case TypeNSEC:
		return decodeNSEC(p, end)
	case TypeNSEC3:
		return decodeNSEC3(p, end)
	default:
		raw, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(raw))
		copy(cp, raw)
		return &RawData{T: t, Data: cp}, nil
	}
}

func decodeSOA(p *parser) (*SOAData, error) {
	mname, err := p.name()
	if err != nil {
		return nil, err
	}
	rname, err := p.name()
	if err != nil {
		return nil, err
	}
	var vals [5]uint32
	for i := range vals {
		if vals[i], err = p.uint32(); err != nil {
			return nil, err
		}
	}
	return &SOAData{
		MName: mname, RName: rname,
		Serial: vals[0], Refresh: vals[1], Retry: vals[2], Expire: vals[3], MinTTL: vals[4],
	}, nil
}

func decodeTXT(p *parser, end int) (*TXTData, error) {
	var out TXTData
	for p.off < end {
		n, err := p.uint8()
		if err != nil {
			return nil, err
		}
		s, err := p.bytes(int(n))
		if err != nil {
			return nil, err
		}
		out.Strings = append(out.Strings, string(s))
	}
	return &out, nil
}

func decodeDNSKEY(p *parser, end int) (*DNSKEYData, error) {
	flags, err := p.uint16()
	if err != nil {
		return nil, err
	}
	proto, err := p.uint8()
	if err != nil {
		return nil, err
	}
	alg, err := p.uint8()
	if err != nil {
		return nil, err
	}
	key, err := p.bytes(end - p.off)
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(key))
	copy(cp, key)
	return &DNSKEYData{Flags: flags, Protocol: proto, Algorithm: alg, PublicKey: cp}, nil
}

// dsFields is the shared DS/DLV wire layout.
type dsFields struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

func decodeDSFields(p *parser, end int) (*dsFields, error) {
	tag, err := p.uint16()
	if err != nil {
		return nil, err
	}
	alg, err := p.uint8()
	if err != nil {
		return nil, err
	}
	dt, err := p.uint8()
	if err != nil {
		return nil, err
	}
	dig, err := p.bytes(end - p.off)
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(dig))
	copy(cp, dig)
	return &dsFields{KeyTag: tag, Algorithm: alg, DigestType: dt, Digest: cp}, nil
}

func decodeRRSIG(p *parser, end int) (*RRSIGData, error) {
	covered, err := p.uint16()
	if err != nil {
		return nil, err
	}
	alg, err := p.uint8()
	if err != nil {
		return nil, err
	}
	labels, err := p.uint8()
	if err != nil {
		return nil, err
	}
	origTTL, err := p.uint32()
	if err != nil {
		return nil, err
	}
	exp, err := p.uint32()
	if err != nil {
		return nil, err
	}
	inc, err := p.uint32()
	if err != nil {
		return nil, err
	}
	tag, err := p.uint16()
	if err != nil {
		return nil, err
	}
	signer, err := p.name()
	if err != nil {
		return nil, err
	}
	sig, err := p.bytes(end - p.off)
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(sig))
	copy(cp, sig)
	return &RRSIGData{
		TypeCovered: Type(covered), Algorithm: alg, Labels: labels,
		OriginalTTL: origTTL, Expiration: exp, Inception: inc,
		KeyTag: tag, SignerName: signer, Signature: cp,
	}, nil
}

func decodeNSEC(p *parser, end int) (*NSECData, error) {
	next, err := p.name()
	if err != nil {
		return nil, err
	}
	types, err := decodeTypeBitmap(p, end)
	if err != nil {
		return nil, err
	}
	return &NSECData{NextName: next, Types: types}, nil
}

func decodeNSEC3(p *parser, end int) (*NSEC3Data, error) {
	alg, err := p.uint8()
	if err != nil {
		return nil, err
	}
	flags, err := p.uint8()
	if err != nil {
		return nil, err
	}
	iter, err := p.uint16()
	if err != nil {
		return nil, err
	}
	saltLen, err := p.uint8()
	if err != nil {
		return nil, err
	}
	salt, err := p.bytes(int(saltLen))
	if err != nil {
		return nil, err
	}
	hashLen, err := p.uint8()
	if err != nil {
		return nil, err
	}
	hash, err := p.bytes(int(hashLen))
	if err != nil {
		return nil, err
	}
	types, err := decodeTypeBitmap(p, end)
	if err != nil {
		return nil, err
	}
	saltCp := make([]byte, len(salt))
	copy(saltCp, salt)
	hashCp := make([]byte, len(hash))
	copy(hashCp, hash)
	return &NSEC3Data{
		HashAlgorithm: alg, Flags: flags, Iterations: iter,
		Salt: saltCp, NextHash: hashCp, Types: types,
	}, nil
}

func decodeTypeBitmap(p *parser, end int) ([]Type, error) {
	var types []Type
	for p.off < end {
		window, err := p.uint8()
		if err != nil {
			return nil, err
		}
		length, err := p.uint8()
		if err != nil {
			return nil, err
		}
		if length == 0 || length > 32 {
			return nil, fmt.Errorf("%w: bitmap window length %d", ErrBadRData, length)
		}
		octets, err := p.bytes(int(length))
		if err != nil {
			return nil, err
		}
		for i, octet := range octets {
			for bit := 0; bit < 8; bit++ {
				if octet&(0x80>>bit) != 0 {
					types = append(types, Type(uint16(window)<<8|uint16(i*8+bit)))
				}
			}
		}
	}
	return types, nil
}
