package udptransport

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/overload"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// sleepHandler answers after holding for d, so tests can saturate the gate.
func sleepHandler(d time.Duration) simnet.Handler {
	return simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		time.Sleep(d)
		r := dns.NewResponse(q)
		r.Header.RCode = dns.RCodeNoError
		return r, nil
	})
}

func startGatedServer(t *testing.T, h simnet.Handler, g *overload.Controller) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv.SetGate(g)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
		g.Close()
	})
	return srv
}

// TestGatedUDPShedsRefused saturates a 1-slot gate with a slow handler and
// checks that excess queries come back REFUSED quickly instead of queueing
// behind the slow one.
func TestGatedUDPShedsRefused(t *testing.T) {
	g := overload.New(overload.Config{MaxInFlight: 1, Exec: 1, QueueTarget: 5 * time.Millisecond})
	srv := startGatedServer(t, sleepHandler(300*time.Millisecond), g)
	c := &Client{Timeout: 2 * time.Second}

	var wg sync.WaitGroup
	rcodes := make([]dns.RCode, 6)
	for i := range rcodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := dns.NewQuery(uint16(i+1), dns.MustName("example.com"), dns.TypeA, false)
			resp, err := c.Query(srv.AddrPort(), q)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			rcodes[i] = resp.Header.RCode
		}(i)
		time.Sleep(10 * time.Millisecond) // separate arrivals: first admits, rest shed
	}
	wg.Wait()
	var ok, refused int
	for _, rc := range rcodes {
		switch rc {
		case dns.RCodeNoError:
			ok++
		case dns.RCodeRefused:
			refused++
		default:
			t.Errorf("unexpected rcode %s", rc)
		}
	}
	if ok == 0 {
		t.Error("no query was served")
	}
	if refused == 0 {
		t.Error("no query was shed")
	}
	if st := g.Stats(); st.Sheds() == 0 {
		t.Errorf("gate counted no sheds: %+v", st)
	}
}

// TestGatedStatsBypass pins the storm-observability guarantee: a stats TXT
// query gets through a fully saturated gate.
func TestGatedStatsBypass(t *testing.T) {
	g := overload.New(overload.Config{MaxInFlight: 1, Exec: 1, QueueTarget: time.Millisecond})
	block := make(chan struct{})
	var once sync.Once
	h := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		// The first (saturating) query parks; everything else answers.
		if q.QName() != dns.MustName("_stats.resolved.invalid") {
			once.Do(func() { <-block })
		}
		r := dns.NewResponse(q)
		r.Header.RCode = dns.RCodeNoError
		return r, nil
	})
	srv := startGatedServer(t, h, g)
	defer close(block)
	c := &Client{Timeout: 2 * time.Second}

	// Saturate: one query holds the only slot.
	go func() {
		q := dns.NewQuery(1, dns.MustName("example.com"), dns.TypeA, false)
		_, _ = c.Query(srv.AddrPort(), q)
	}()
	time.Sleep(50 * time.Millisecond)

	// A normal query sheds...
	q := dns.NewQuery(2, dns.MustName("example.org"), dns.TypeA, false)
	resp, err := c.Query(srv.AddrPort(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dns.RCodeRefused {
		t.Fatalf("saturated gate answered %s, want REFUSED", resp.Header.RCode)
	}
	// ...but the stats scrape does not.
	sq := dns.NewQuery(3, dns.MustName("_stats.resolved.invalid"), dns.TypeTXT, false)
	resp, err = c.Query(srv.AddrPort(), sq)
	if err != nil {
		t.Fatalf("stats scrape failed through a saturated gate: %v", err)
	}
	if resp.Header.RCode != dns.RCodeNoError {
		t.Fatalf("stats scrape rcode = %s", resp.Header.RCode)
	}
}

// TestGatedTCPShedsRefused checks the TCP shed path: framed REFUSED with
// the connection kept alive.
func TestGatedTCPShedsRefused(t *testing.T) {
	g := overload.New(overload.Config{MaxInFlight: 1, Exec: 1, QueueTarget: time.Millisecond})
	defer g.Close()
	block := make(chan struct{})
	h := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		<-block
		r := dns.NewResponse(q)
		r.Header.RCode = dns.RCodeNoError
		return r, nil
	})
	udpSrv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	udpSrv.SetGate(g)
	go func() { _ = udpSrv.Serve() }()
	defer func() { _ = udpSrv.Close() }()
	tcpSrv, err := ListenTCP(udpSrv.AddrPort().String(), h)
	if err != nil {
		t.Fatal(err)
	}
	tcpSrv.SetGate(g)
	go func() { _ = tcpSrv.Serve() }()
	defer func() { _ = tcpSrv.Close() }()

	// Saturate the shared window via UDP.
	c := &Client{Timeout: 2 * time.Second}
	go func() {
		q := dns.NewQuery(1, dns.MustName("example.com"), dns.TypeA, false)
		_, _ = c.Query(udpSrv.AddrPort(), q)
	}()
	time.Sleep(50 * time.Millisecond)

	q := dns.NewQuery(2, dns.MustName("example.org"), dns.TypeA, false)
	resp, err := c.QueryTCP(tcpSrv.AddrPort(), q)
	if err != nil {
		t.Fatalf("tcp query: %v", err)
	}
	if resp.Header.RCode != dns.RCodeRefused {
		t.Fatalf("tcp shed rcode = %s", resp.Header.RCode)
	}
	close(block)
}

// TestGatedShutdownDrains pins that a gated server still drains cleanly.
func TestGatedShutdownDrains(t *testing.T) {
	g := overload.New(overload.Config{MaxInFlight: 64, Exec: 4, QueueTarget: 100 * time.Millisecond})
	defer g.Close()
	srv, err := Listen("127.0.0.1:0", sleepHandler(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetGate(g)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c := &Client{Timeout: time.Second}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := dns.NewQuery(uint16(i+1), dns.MustName("example.com"), dns.TypeA, false)
			_, _ = c.Query(srv.AddrPort(), q)
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	if err := srv.Shutdown(2 * time.Second); err != nil && err != ErrClosed {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != ErrClosed {
		t.Fatalf("serve returned %v", err)
	}
	wg.Wait()
	if st := g.Stats(); st.InFlight != 0 {
		t.Errorf("gate leaked in-flight slots after drain: %+v", st)
	}
}
