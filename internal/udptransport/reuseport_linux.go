//go:build linux

package udptransport

import (
	"context"
	"net"
	"syscall"
)

// reusePortAvailable reports whether ListenShards can bind multiple
// sockets to one address. Linux has had SO_REUSEPORT with kernel-side
// 4-tuple load balancing since 3.9.
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT (15 on every Linux arch); the frozen syscall
// package predates the option and never grew the constant.
const soReusePort = 0xf

// listenReusePort binds one UDP socket with SO_REUSEPORT set before bind,
// so N shards can share the address and the kernel hashes flows across
// them.
func listenReusePort(addr string) (net.PacketConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.ListenPacket(context.Background(), "udp", addr)
}
