// Package udptransport serves the repository's DNS handlers over real UDP
// sockets and provides a matching client, so the simulated components can
// be exercised with real resolvers and tools (dig, drill): cmd/resolved
// fronts the recursive resolver, cmd/dlvd fronts the DLV registry.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// maxPacket is the largest UDP payload accepted (EDNS0 ceiling).
const maxPacket = 4096

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("udptransport: server closed")

// Server pumps UDP packets through a simnet.Handler.
type Server struct {
	conn    net.PacketConn
	handler simnet.Handler
	// sem bounds in-flight packet handlers; nil means synchronous.
	sem chan struct{}

	mu     sync.Mutex
	closed bool
}

// Listen binds a UDP socket (e.g. "127.0.0.1:5300"; port 0 picks a free
// one) and prepares to serve h.
func Listen(addr string, h simnet.Handler) (*Server, error) {
	if h == nil {
		return nil, errors.New("udptransport: nil handler")
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen %s: %w", addr, err)
	}
	return &Server{conn: conn, handler: h}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// AddrPort returns the bound address as a netip.AddrPort.
func (s *Server) AddrPort() netip.AddrPort {
	if ua, ok := s.conn.LocalAddr().(*net.UDPAddr); ok {
		return ua.AddrPort()
	}
	return netip.AddrPort{}
}

// SetWorkers lets up to n datagrams be handled concurrently; the handler
// must then be safe for concurrent use (e.g. a resolver pool). n <= 1
// keeps the default synchronous loop. Must be called before Serve.
func (s *Server) SetWorkers(n int) {
	if n > 1 {
		s.sem = make(chan struct{}, n)
	} else {
		s.sem = nil
	}
}

// Serve processes packets until Close. Malformed packets are dropped;
// handler errors produce SERVFAIL responses.
func (s *Server) Serve() error {
	buf := make([]byte, maxPacket)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("udptransport: read: %w", err)
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		if s.sem == nil {
			s.handle(pkt, from)
			continue
		}
		s.sem <- struct{}{}
		go func() {
			defer func() { <-s.sem }()
			s.handle(pkt, from)
		}()
	}
}

// handle processes one datagram. Responses go out via conn.WriteTo, which
// is safe for concurrent use when SetWorkers enabled parallel handling.
func (s *Server) handle(pkt []byte, from net.Addr) {
	q, err := dns.DecodeMessage(pkt)
	if err != nil {
		return // drop garbage
	}
	var src netip.Addr
	if ua, ok := from.(*net.UDPAddr); ok {
		src = ua.AddrPort().Addr()
	}
	resp, err := s.handler.HandleQuery(q, src)
	if err != nil {
		resp = dns.NewResponse(q)
		resp.Header.RCode = dns.RCodeServFail
	}
	wire, err := resp.Encode()
	if err != nil {
		return
	}
	if len(wire) > maxPacket {
		// Truncate per RFC 1035 §4.2.1: header + question only, TC set.
		trunc := dns.NewResponse(q)
		trunc.Header.RCode = resp.Header.RCode
		trunc.Header.TC = true
		if wire, err = trunc.Encode(); err != nil {
			return
		}
	}
	_, _ = s.conn.WriteTo(wire, from)
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

// Client sends queries over UDP.
type Client struct {
	// Timeout bounds each exchange (default 3s).
	Timeout time.Duration
}

// Query sends one message and decodes the response.
func (c *Client) Query(server netip.AddrPort, q *dns.Message) (*dns.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	conn, err := net.Dial("udp", server.String())
	if err != nil {
		return nil, fmt.Errorf("udptransport: dial %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()

	wire, err := q.Encode()
	if err != nil {
		return nil, fmt.Errorf("udptransport: encode: %w", err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("udptransport: deadline: %w", err)
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("udptransport: send: %w", err)
	}
	buf := make([]byte, maxPacket)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("udptransport: receive: %w", err)
	}
	resp, err := dns.DecodeMessage(buf[:n])
	if err != nil {
		return nil, fmt.Errorf("udptransport: decode: %w", err)
	}
	if resp.Header.ID != q.Header.ID {
		return nil, fmt.Errorf("udptransport: response ID %d does not match query %d",
			resp.Header.ID, q.Header.ID)
	}
	return resp, nil
}
