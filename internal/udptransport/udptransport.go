// Package udptransport serves the repository's DNS handlers over real UDP
// sockets and provides a matching client, so the simulated components can
// be exercised with real resolvers and tools (dig, drill): cmd/resolved
// fronts the recursive resolver, cmd/dlvd fronts the DLV registry.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/overload"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// maxPacket is the largest UDP payload accepted (EDNS0 ceiling).
const maxPacket = 4096

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("udptransport: server closed")

// ErrDrainTimeout is returned by Shutdown when in-flight queries did not
// complete within the drain deadline.
var ErrDrainTimeout = errors.New("udptransport: drain deadline exceeded")

// Stats are the serving-side transport counters one listener accumulates —
// half of the serving-tier scorecard (the resolver's Stats are the other).
// All fields are monotonic except InFlight.
type Stats struct {
	// Queries counts well-formed queries handed to the handler; Malformed
	// counts datagrams (or TCP frames) dropped undecodable.
	Queries   uint64
	Malformed uint64
	// Responses counts responses written; Truncated counts UDP responses
	// sent with TC set because the full answer exceeded the datagram
	// ceiling; ServFails counts handler errors surfaced as SERVFAIL.
	Responses uint64
	Truncated uint64
	ServFails uint64
	// InFlight is the current number of queries being handled;
	// MaxInFlight is its high-water mark.
	InFlight    int64
	MaxInFlight int64
	// Conns counts TCP connections accepted (0 on UDP servers).
	Conns uint64
}

// counters is the shared atomic implementation behind Stats.
type counters struct {
	queries   atomic.Uint64
	malformed atomic.Uint64
	responses atomic.Uint64
	truncated atomic.Uint64
	servfails atomic.Uint64
	conns     atomic.Uint64
	inflight  atomic.Int64
	maxInFl   atomic.Int64
}

// enter tracks one query entering the handler, updating the in-flight
// high-water mark.
func (c *counters) enter() {
	cur := c.inflight.Add(1)
	for {
		max := c.maxInFl.Load()
		if cur <= max || c.maxInFl.CompareAndSwap(max, cur) {
			return
		}
	}
}

func (c *counters) leave() { c.inflight.Add(-1) }

// snapshot copies the counters into an exported Stats.
func (c *counters) snapshot() Stats {
	return Stats{
		Queries:     c.queries.Load(),
		Malformed:   c.malformed.Load(),
		Responses:   c.responses.Load(),
		Truncated:   c.truncated.Load(),
		ServFails:   c.servfails.Load(),
		InFlight:    c.inflight.Load(),
		MaxInFlight: c.maxInFl.Load(),
		Conns:       c.conns.Load(),
	}
}

// Plus returns the field-wise sum of two Stats (max of the watermarks), so
// the UDP and TCP listeners of one service can report a combined scorecard.
func (s Stats) Plus(o Stats) Stats {
	out := Stats{
		Queries:     s.Queries + o.Queries,
		Malformed:   s.Malformed + o.Malformed,
		Responses:   s.Responses + o.Responses,
		Truncated:   s.Truncated + o.Truncated,
		ServFails:   s.ServFails + o.ServFails,
		InFlight:    s.InFlight + o.InFlight,
		MaxInFlight: s.MaxInFlight,
		Conns:       s.Conns + o.Conns,
	}
	if o.MaxInFlight > out.MaxInFlight {
		out.MaxInFlight = o.MaxInFlight
	}
	return out
}

// Server pumps UDP packets through a simnet.Handler.
type Server struct {
	conn    net.PacketConn
	handler simnet.Handler
	// sem bounds in-flight packet handlers; nil means synchronous.
	sem chan struct{}
	// gate, when set, is the overload admission controller: every packet
	// passes AdmitFast in the read loop, sheds answer REFUSED from the
	// pre-encoded header, and admitted packets run under Acquire/Release.
	gate *overload.Controller
	// wg tracks in-flight handlers so Shutdown can drain them.
	wg sync.WaitGroup

	stats counters

	mu     sync.Mutex
	closed bool
}

// Listen binds a UDP socket (e.g. "127.0.0.1:5300"; port 0 picks a free
// one) and prepares to serve h.
func Listen(addr string, h simnet.Handler) (*Server, error) {
	if h == nil {
		return nil, errors.New("udptransport: nil handler")
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen %s: %w", addr, err)
	}
	return &Server{conn: conn, handler: h}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// AddrPort returns the bound address as a netip.AddrPort.
func (s *Server) AddrPort() netip.AddrPort {
	if ua, ok := s.conn.LocalAddr().(*net.UDPAddr); ok {
		return ua.AddrPort()
	}
	return netip.AddrPort{}
}

// Stats snapshots the transport counters.
func (s *Server) Stats() Stats { return s.stats.snapshot() }

// SetWorkers lets up to n datagrams be handled concurrently; the handler
// must then be safe for concurrent use (e.g. a resolver pool). n <= 1
// keeps the default synchronous loop. Must be called before Serve.
func (s *Server) SetWorkers(n int) {
	if n > 1 {
		s.sem = make(chan struct{}, n)
	} else {
		s.sem = nil
	}
}

// SetGate installs the overload admission controller; nil serves ungated.
// The gate replaces the SetWorkers semaphore as the concurrency bound (its
// in-flight window caps handler goroutines, its execution queue caps pool
// pressure). Must be called before Serve.
func (s *Server) SetGate(g *overload.Controller) { s.gate = g }

// Serve processes packets until Close. Malformed packets are dropped;
// handler errors produce SERVFAIL responses.
func (s *Server) Serve() error {
	buf := make([]byte, maxPacket)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("udptransport: read: %w", err)
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		// wg.Add is gated on closed under the mutex so Shutdown's
		// wg.Wait never races a late Add: once closed is set, no new
		// handler starts (a packet read in that window is dropped —
		// shutdown stops accepting).
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		s.wg.Add(1)
		s.mu.Unlock()
		if s.gate != nil {
			s.dispatchGated(pkt, from)
			continue
		}
		if s.sem == nil {
			s.handle(pkt, from)
			s.wg.Done()
			continue
		}
		s.sem <- struct{}{}
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			s.handle(pkt, from)
		}()
	}
}

// dispatchGated routes one datagram through the admission controller. The
// decision and both shed layers run synchronously — the read loop must
// never block behind a full pool, because a blocked read loop is exactly
// the collapse mode the gate exists to prevent. Only admitted packets (and
// stats bypasses) get a goroutine; admitted goroutines are bounded by the
// gate's in-flight window.
func (s *Server) dispatchGated(pkt []byte, from net.Addr) {
	var src netip.Addr
	if ua, ok := from.(*net.UDPAddr); ok {
		src = ua.AddrPort().Addr()
	}
	switch s.gate.AdmitFast(pkt, src) {
	case overload.Bypass:
		// Stats scrapes run outside the window so observability survives
		// the storm; they are rare and cheap (TryLock-cached pool stats).
		go func() {
			defer s.wg.Done()
			s.handle(pkt, from)
		}()
	case overload.Admitted:
		go func() {
			defer s.wg.Done()
			if !s.gate.Acquire() {
				s.shed(pkt, from) // queued past the deadline
				return
			}
			defer s.gate.Release()
			s.handle(pkt, from)
		}()
	default: // ShedRateLimited, ShedWindow
		s.shed(pkt, from)
		s.wg.Done()
	}
}

// shed answers one raw query REFUSED from the pre-encoded header, patching
// only the ID — the cheap path that keeps the read loop draining at wire
// speed while the tier is saturated.
func (s *Server) shed(pkt []byte, from net.Addr) {
	if len(pkt) < overload.HeaderLen {
		s.stats.malformed.Add(1)
		return
	}
	var buf [overload.HeaderLen]byte
	if _, err := s.conn.WriteTo(overload.RefusedInto(buf[:], pkt), from); err == nil {
		s.stats.responses.Add(1)
	}
}

// handle processes one datagram. Responses go out via conn.WriteTo, which
// is safe for concurrent use when SetWorkers enabled parallel handling.
func (s *Server) handle(pkt []byte, from net.Addr) {
	q, err := dns.DecodeMessage(pkt)
	if err != nil {
		s.stats.malformed.Add(1)
		return // drop garbage
	}
	s.stats.queries.Add(1)
	s.stats.enter()
	defer s.stats.leave()
	var src netip.Addr
	if ua, ok := from.(*net.UDPAddr); ok {
		src = ua.AddrPort().Addr()
	}
	resp, err := s.handler.HandleQuery(q, src)
	if err != nil {
		resp = dns.NewResponse(q)
		resp.Header.RCode = dns.RCodeServFail
		s.stats.servfails.Add(1)
	}
	wire, err := resp.Encode()
	if err != nil {
		return
	}
	if len(wire) > maxPacket {
		// Truncate per RFC 1035 §4.2.1: header + question only, TC set.
		trunc := dns.NewResponse(q)
		trunc.Header.RCode = resp.Header.RCode
		trunc.Header.TC = true
		if wire, err = trunc.Encode(); err != nil {
			return
		}
		s.stats.truncated.Add(1)
	}
	if _, err := s.conn.WriteTo(wire, from); err == nil {
		s.stats.responses.Add(1)
	}
}

// Close stops the server immediately; in-flight handlers finish on their
// own time but nothing waits for them. Use Shutdown to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

// Shutdown stops accepting datagrams (closing the socket unblocks Serve)
// and waits up to timeout for in-flight queries to finish. In-flight
// responses race the socket close and may be dropped — the queries still
// complete, which is what draining protects. Returns ErrDrainTimeout when
// the deadline passes first.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.Close()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return err
	case <-time.After(timeout):
		return ErrDrainTimeout
	}
}

// Client sends queries over UDP.
type Client struct {
	// Timeout bounds each exchange (default 3s).
	Timeout time.Duration
}

// Query sends one message and decodes the response.
func (c *Client) Query(server netip.AddrPort, q *dns.Message) (*dns.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	conn, err := net.Dial("udp", server.String())
	if err != nil {
		return nil, fmt.Errorf("udptransport: dial %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()

	wire, err := q.Encode()
	if err != nil {
		return nil, fmt.Errorf("udptransport: encode: %w", err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("udptransport: deadline: %w", err)
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("udptransport: send: %w", err)
	}
	buf := make([]byte, maxPacket)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("udptransport: receive: %w", err)
	}
	resp, err := dns.DecodeMessage(buf[:n])
	if err != nil {
		return nil, fmt.Errorf("udptransport: decode: %w", err)
	}
	if resp.Header.ID != q.Header.ID {
		return nil, fmt.Errorf("udptransport: response ID %d does not match query %d",
			resp.Header.ID, q.Header.ID)
	}
	return resp, nil
}
