// Package udptransport serves the repository's DNS handlers over real UDP
// sockets and provides a matching client, so the simulated components can
// be exercised with real resolvers and tools (dig, drill): cmd/resolved
// fronts the recursive resolver, cmd/dlvd fronts the DLV registry.
//
// The UDP server is sharded (DESIGN.md §14): ListenShards binds N sockets
// to the same address via SO_REUSEPORT so the kernel spreads flows across
// N independent read loops, one per shard. Each shard recycles its packet
// buffers through a freelist, hands admitted work to a fixed worker pool,
// and tracks its own in-flight WaitGroup — the hot loop takes no locks and
// spawns no per-packet goroutines. On platforms without SO_REUSEPORT the
// server falls back to a single shard with the same semantics.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/overload"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// maxPacket is the largest UDP payload accepted (EDNS0 ceiling).
const maxPacket = 4096

// freelistCap bounds each shard's recycled packet buffers. Deep enough to
// cover the admission window a shard can realistically hold; overflow
// buffers just fall to the garbage collector.
const freelistCap = 256

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("udptransport: server closed")

// ErrDrainTimeout is returned by Shutdown when in-flight queries did not
// complete within the drain deadline.
var ErrDrainTimeout = errors.New("udptransport: drain deadline exceeded")

// errServeTwice guards the per-shard worker pools: Serve owns their
// lifecycle, so a second concurrent Serve on one Server is a bug.
var errServeTwice = errors.New("udptransport: Serve called twice")

// Stats are the serving-side transport counters one listener accumulates —
// half of the serving-tier scorecard (the resolver's Stats are the other).
// All fields are monotonic except InFlight.
type Stats struct {
	// Queries counts well-formed queries handed to the handler; Malformed
	// counts datagrams (or TCP frames) dropped undecodable.
	Queries   uint64
	Malformed uint64
	// Responses counts responses written; Truncated counts UDP responses
	// sent with TC set because the full answer exceeded the datagram
	// ceiling; ServFails counts handler errors surfaced as SERVFAIL.
	Responses uint64
	Truncated uint64
	ServFails uint64
	// InFlight is the current number of queries being handled;
	// MaxInFlight is its high-water mark. On a sharded server the merged
	// MaxInFlight is the sum of the per-shard high-water marks — an upper
	// bound on the true process-wide peak (the shards need not have peaked
	// at the same instant), exact at one shard.
	InFlight    int64
	MaxInFlight int64
	// Conns counts TCP connections accepted (0 on UDP servers).
	Conns uint64
}

// counters is the shared atomic implementation behind Stats.
type counters struct {
	queries   atomic.Uint64
	malformed atomic.Uint64
	responses atomic.Uint64
	truncated atomic.Uint64
	servfails atomic.Uint64
	conns     atomic.Uint64
	inflight  atomic.Int64
	maxInFl   atomic.Int64
}

// enter tracks one query entering the handler, updating the in-flight
// high-water mark.
func (c *counters) enter() {
	cur := c.inflight.Add(1)
	for {
		max := c.maxInFl.Load()
		if cur <= max || c.maxInFl.CompareAndSwap(max, cur) {
			return
		}
	}
}

func (c *counters) leave() { c.inflight.Add(-1) }

// snapshot copies the counters into an exported Stats.
func (c *counters) snapshot() Stats {
	return Stats{
		Queries:     c.queries.Load(),
		Malformed:   c.malformed.Load(),
		Responses:   c.responses.Load(),
		Truncated:   c.truncated.Load(),
		ServFails:   c.servfails.Load(),
		InFlight:    c.inflight.Load(),
		MaxInFlight: c.maxInFl.Load(),
		Conns:       c.conns.Load(),
	}
}

// Plus returns the field-wise sum of two Stats (max of the watermarks), so
// the UDP and TCP listeners of one service can report a combined scorecard.
func (s Stats) Plus(o Stats) Stats {
	out := Stats{
		Queries:     s.Queries + o.Queries,
		Malformed:   s.Malformed + o.Malformed,
		Responses:   s.Responses + o.Responses,
		Truncated:   s.Truncated + o.Truncated,
		ServFails:   s.ServFails + o.ServFails,
		InFlight:    s.InFlight + o.InFlight,
		MaxInFlight: s.MaxInFlight,
		Conns:       s.Conns + o.Conns,
	}
	if o.MaxInFlight > out.MaxInFlight {
		out.MaxInFlight = o.MaxInFlight
	}
	return out
}

// job is one admitted datagram handed from a shard's read loop to its
// worker pool. buf travels with it and returns to the freelist after
// handling; t is the AdmitFast timestamp so time spent queued in the
// hand-off channel counts against the gate's CoDel deadline.
type job struct {
	buf      *[maxPacket]byte
	n        int
	from     netip.AddrPort
	t        time.Time
	admitted bool
}

// Server pumps UDP packets through a simnet.Handler across one or more
// SO_REUSEPORT shards.
type Server struct {
	handler simnet.Handler
	// workers is the SetWorkers concurrency bound, split across shards.
	workers int
	// gate, when set, is the overload admission controller: every packet
	// passes AdmitFast in the read loop, sheds answer REFUSED from the
	// pre-encoded header, and admitted packets run under
	// AcquireSince/Release. The window and health machine are global —
	// one gate serves every shard.
	gate *overload.Controller

	shards []*shard

	// closed flips once on Close; the read loops check it lock-free.
	closed  atomic.Bool
	serving atomic.Bool
}

// shard is one SO_REUSEPORT socket with its own read loop, buffer
// freelist, worker pool, stats, and drain WaitGroup.
type shard struct {
	srv  *Server
	conn net.PacketConn
	// uc is the *net.UDPConn fast path (ReadFromUDPAddrPort /
	// WriteToUDPAddrPort avoid a *net.UDPAddr allocation per packet);
	// nil only if the platform hands back some other PacketConn.
	uc *net.UDPConn

	stats counters

	// wg counts the read loop itself (one persistent token held from
	// Serve until the loop exits) plus every in-flight handler. The loop
	// token makes per-packet wg.Add race-free against Shutdown's wg.Wait:
	// Adds only happen while the loop token holds the counter above zero.
	wg sync.WaitGroup

	// jobs feeds the worker pool; nil means handle inline (workers <= 1,
	// ungated). In gated mode its capacity covers the whole admission
	// window, so the read loop never blocks on a send.
	jobs chan job

	// free recycles packet buffers; get falls back to allocation, put
	// drops on overflow.
	free chan *[maxPacket]byte
}

// Listen binds a single UDP socket (e.g. "127.0.0.1:5300"; port 0 picks a
// free one) and prepares to serve h.
func Listen(addr string, h simnet.Handler) (*Server, error) {
	return ListenShards(addr, h, 1)
}

// ListenShards binds n UDP sockets to the same address via SO_REUSEPORT so
// the kernel spreads clients across n independent read loops. n <= 1, or a
// platform without SO_REUSEPORT, degrades to a single socket; Shards
// reports the count actually bound.
func ListenShards(addr string, h simnet.Handler, n int) (*Server, error) {
	if h == nil {
		return nil, errors.New("udptransport: nil handler")
	}
	if n < 1 {
		n = 1
	}
	if n > 1 && !reusePortAvailable {
		n = 1
	}
	s := &Server{handler: h}
	if n == 1 {
		conn, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udptransport: listen %s: %w", addr, err)
		}
		s.shards = []*shard{newShard(s, conn)}
		return s, nil
	}
	first, err := listenReusePort(addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen %s: %w", addr, err)
	}
	s.shards = append(s.shards, newShard(s, first))
	// Re-bind the resolved address so "port 0" shares one concrete port.
	bound := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		conn, err := listenReusePort(bound)
		if err != nil {
			for _, sh := range s.shards {
				_ = sh.conn.Close()
			}
			return nil, fmt.Errorf("udptransport: listen shard %d on %s: %w", i, bound, err)
		}
		s.shards = append(s.shards, newShard(s, conn))
	}
	return s, nil
}

func newShard(s *Server, conn net.PacketConn) *shard {
	sh := &shard{
		srv:  s,
		conn: conn,
		free: make(chan *[maxPacket]byte, freelistCap),
	}
	sh.uc, _ = conn.(*net.UDPConn)
	return sh
}

// Shards returns the number of listener shards actually bound.
func (s *Server) Shards() int { return len(s.shards) }

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.shards[0].conn.LocalAddr() }

// AddrPort returns the bound address as a netip.AddrPort.
func (s *Server) AddrPort() netip.AddrPort {
	if ua, ok := s.shards[0].conn.LocalAddr().(*net.UDPAddr); ok {
		return ua.AddrPort()
	}
	return netip.AddrPort{}
}

// Stats merges the per-shard transport counters. Every per-shard counter
// is atomic and monotone, so successive merged snapshots are monotone too;
// MaxInFlight is the sum of shard watermarks (see Stats).
func (s *Server) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.stats.snapshot()
		out.Queries += st.Queries
		out.Malformed += st.Malformed
		out.Responses += st.Responses
		out.Truncated += st.Truncated
		out.ServFails += st.ServFails
		out.InFlight += st.InFlight
		out.MaxInFlight += st.MaxInFlight
		out.Conns += st.Conns
	}
	return out
}

// SetWorkers lets up to n datagrams be handled concurrently, split across
// the shards; the handler must then be safe for concurrent use (e.g. a
// resolver pool). n <= 1 keeps each shard's loop synchronous. Must be
// called before Serve.
func (s *Server) SetWorkers(n int) { s.workers = n }

// SetGate installs the overload admission controller; nil serves ungated.
// The gate replaces the SetWorkers bound as the concurrency limit (its
// in-flight window caps queued handlers, its execution slots cap pool
// pressure), and one gate is shared by every shard — admission and health
// stay global. Must be called before Serve.
func (s *Server) SetGate(g *overload.Controller) { s.gate = g }

// poolSize returns the per-shard worker-pool width and jobs-channel
// capacity; pool 0 means handle inline on the read loop.
func (s *Server) poolSize() (pool, queue int) {
	switch {
	case s.gate != nil:
		// Workers cover the gate's execution slots plus one to keep the
		// queue deadline ticking while every slot is busy.
		pool = s.gate.ExecSlots() + 1
		if pool < 2 {
			pool = 2
		}
		// Admitted datagrams process-wide never exceed the window, so a
		// per-shard queue of window size can never block the read loop.
		queue = s.gate.Window() + 16
	case s.workers > 1:
		pool = (s.workers + len(s.shards) - 1) / len(s.shards)
		queue = pool
	}
	return pool, queue
}

// Serve processes packets on every shard until Close. Malformed packets
// are dropped; handler errors produce SERVFAIL responses.
func (s *Server) Serve() error {
	if !s.serving.CompareAndSwap(false, true) {
		return errServeTwice
	}
	pool, queue := s.poolSize()
	for _, sh := range s.shards {
		sh.start(pool, queue)
	}
	errc := make(chan error, len(s.shards))
	for _, sh := range s.shards {
		go func(sh *shard) { errc <- sh.runLoop() }(sh)
	}
	var first error
	for range s.shards {
		err := <-errc
		if err != nil && !errors.Is(err, ErrClosed) {
			// A real socket error on one shard tears down the rest.
			_ = s.Close()
			if first == nil || errors.Is(first, ErrClosed) {
				first = err
			}
		} else if first == nil {
			first = err
		}
	}
	return first
}

// start takes the loop token and spins up the worker pool.
func (sh *shard) start(pool, queue int) {
	sh.wg.Add(1)
	if pool > 0 {
		sh.jobs = make(chan job, queue)
		for i := 0; i < pool; i++ {
			go sh.worker()
		}
	}
}

func (sh *shard) worker() {
	for j := range sh.jobs {
		sh.run(j)
		sh.wg.Done()
	}
}

// run executes one pooled job. Admitted jobs re-check the queue deadline
// from their admission time, so time spent in the hand-off channel counts;
// a late job is shed exactly as if it had queued inside the gate.
func (sh *shard) run(j job) {
	if j.admitted {
		if !sh.srv.gate.AcquireSince(j.t) {
			sh.shed(j.buf[:j.n], j.from)
			sh.putBuf(j.buf)
			return
		}
		sh.handle(j.buf[:j.n], j.from)
		sh.srv.gate.Release()
	} else {
		sh.handle(j.buf[:j.n], j.from)
	}
	sh.putBuf(j.buf)
}

// getBuf pops a recycled packet buffer or allocates a fresh one.
func (sh *shard) getBuf() *[maxPacket]byte {
	select {
	case b := <-sh.free:
		return b
	default:
		return new([maxPacket]byte)
	}
}

// putBuf recycles a packet buffer; over capacity it falls to the GC.
func (sh *shard) putBuf(b *[maxPacket]byte) {
	select {
	case sh.free <- b:
	default:
	}
}

// scalarLoop is the one-datagram-per-wakeup read loop. The batchio build
// replaces it with a recvmmsg loop on capable sockets (batchio_linux.go);
// both share dispatch and the drain protocol: the loop token is released
// only on exit, after the deferred close(jobs) retires the worker pool.
func (sh *shard) scalarLoop() error {
	defer sh.wg.Done()
	if sh.jobs != nil {
		defer close(sh.jobs)
	}
	s := sh.srv
	for {
		buf := sh.getBuf()
		n, from, err := sh.read(buf[:])
		if err != nil {
			sh.putBuf(buf)
			if s.closed.Load() {
				return ErrClosed
			}
			return fmt.Errorf("udptransport: read: %w", err)
		}
		if s.closed.Load() {
			// A packet read in the close window is dropped — shutdown
			// stops accepting.
			sh.putBuf(buf)
			return ErrClosed
		}
		sh.dispatch(buf, n, from)
	}
}

// dispatch routes one datagram. Gated: the admission decision and both
// shed layers run synchronously — the read loop must never block behind a
// full pool, because a blocked read loop is exactly the collapse mode the
// gate exists to prevent; admitted packets enter the bounded jobs queue
// (capacity covers the whole window) and stats bypasses get a goroutine so
// observability never waits behind a saturated pool. Ungated with a pool:
// the blocking jobs send is the SetWorkers backpressure. No pool: inline.
func (sh *shard) dispatch(buf *[maxPacket]byte, n int, from netip.AddrPort) {
	s := sh.srv
	if s.gate != nil {
		switch s.gate.AdmitFast(buf[:n], from.Addr()) {
		case overload.Bypass:
			sh.wg.Add(1)
			go func() {
				defer sh.wg.Done()
				sh.handle(buf[:n], from)
				sh.putBuf(buf)
			}()
		case overload.Admitted:
			sh.wg.Add(1)
			sh.jobs <- job{buf: buf, n: n, from: from, t: time.Now(), admitted: true}
		default: // ShedRateLimited, ShedWindow
			sh.shed(buf[:n], from)
			sh.putBuf(buf)
		}
		return
	}
	if sh.jobs == nil {
		sh.handle(buf[:n], from)
		sh.putBuf(buf)
		return
	}
	sh.wg.Add(1)
	sh.jobs <- job{buf: buf, n: n, from: from}
}

// read receives one datagram, preferring the UDPConn netip fast path.
func (sh *shard) read(b []byte) (int, netip.AddrPort, error) {
	if sh.uc != nil {
		return sh.uc.ReadFromUDPAddrPort(b)
	}
	n, a, err := sh.conn.ReadFrom(b)
	var ap netip.AddrPort
	if ua, ok := a.(*net.UDPAddr); ok {
		ap = ua.AddrPort()
	}
	return n, ap, err
}

// write sends one datagram, preferring the UDPConn netip fast path.
func (sh *shard) write(b []byte, to netip.AddrPort) error {
	if sh.uc != nil {
		_, err := sh.uc.WriteToUDPAddrPort(b, to)
		return err
	}
	_, err := sh.conn.WriteTo(b, net.UDPAddrFromAddrPort(to))
	return err
}

// shed answers one raw query REFUSED from the pre-encoded header, patching
// only the ID — the cheap path that keeps the read loop draining at wire
// speed while the tier is saturated.
func (sh *shard) shed(pkt []byte, from netip.AddrPort) {
	if len(pkt) < overload.HeaderLen {
		sh.stats.malformed.Add(1)
		return
	}
	var buf [overload.HeaderLen]byte
	if err := sh.write(overload.RefusedInto(buf[:], pkt), from); err == nil {
		sh.stats.responses.Add(1)
	}
}

// handle processes one datagram. Responses go out on this shard's socket,
// which is safe for concurrent use across the pool. The decoder copies
// everything it retains (interned names, copied rdata), so pkt may be
// recycled the moment handle returns.
func (sh *shard) handle(pkt []byte, from netip.AddrPort) {
	q, err := dns.DecodeMessage(pkt)
	if err != nil {
		sh.stats.malformed.Add(1)
		return // drop garbage
	}
	sh.stats.queries.Add(1)
	sh.stats.enter()
	defer sh.stats.leave()
	resp, err := sh.srv.handler.HandleQuery(q, from.Addr())
	if err != nil {
		resp = dns.NewResponse(q)
		resp.Header.RCode = dns.RCodeServFail
		sh.stats.servfails.Add(1)
	}
	wire, err := resp.Encode()
	if err != nil {
		return
	}
	if len(wire) > maxPacket {
		// Truncate per RFC 1035 §4.2.1: header + question only, TC set.
		trunc := dns.NewResponse(q)
		trunc.Header.RCode = resp.Header.RCode
		trunc.Header.TC = true
		if wire, err = trunc.Encode(); err != nil {
			return
		}
		sh.stats.truncated.Add(1)
	}
	if err := sh.write(wire, from); err == nil {
		sh.stats.responses.Add(1)
	}
}

// Close stops the server immediately; in-flight handlers finish on their
// own time but nothing waits for them. Use Shutdown to drain.
func (s *Server) Close() error {
	s.closed.Store(true)
	var first error
	for _, sh := range s.shards {
		if err := sh.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shutdown stops accepting datagrams (closing the sockets unblocks every
// read loop) and waits up to timeout for in-flight queries to finish.
// In-flight responses race the socket close and may be dropped — the
// queries still complete, which is what draining protects. Returns
// ErrDrainTimeout when the deadline passes first.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.Close()
	done := make(chan struct{})
	go func() {
		for _, sh := range s.shards {
			sh.wg.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-time.After(timeout):
		return ErrDrainTimeout
	}
}

// Client sends queries over UDP.
type Client struct {
	// Timeout bounds each exchange (default 3s).
	Timeout time.Duration

	// discards counts datagrams skipped mid-exchange: undecodable noise
	// and ID mismatches (late duplicates from a prior retry).
	discards atomic.Uint64
}

// Discards reports datagrams skipped across all exchanges: undecodable
// responses and stale IDs read past instead of failing the exchange.
func (c *Client) Discards() uint64 { return c.discards.Load() }

// Query sends one message and decodes the response. Datagrams that do not
// decode, or whose ID does not match (a late duplicate from an earlier
// retry on the same local port), are discarded and the read continues
// until the deadline — one stale packet must not poison the exchange.
func (c *Client) Query(server netip.AddrPort, q *dns.Message) (*dns.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	conn, err := net.Dial("udp", server.String())
	if err != nil {
		return nil, fmt.Errorf("udptransport: dial %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()

	wire, err := q.Encode()
	if err != nil {
		return nil, fmt.Errorf("udptransport: encode: %w", err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("udptransport: deadline: %w", err)
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("udptransport: send: %w", err)
	}
	buf := make([]byte, maxPacket)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("udptransport: receive: %w", err)
		}
		resp, err := dns.DecodeMessage(buf[:n])
		if err != nil {
			c.discards.Add(1)
			continue
		}
		if resp.Header.ID != q.Header.ID {
			c.discards.Add(1)
			continue
		}
		return resp, nil
	}
}
