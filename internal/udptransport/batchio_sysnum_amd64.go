//go:build linux && batchio && amd64

package udptransport

// recvmmsg/sendmmsg syscall numbers for linux/amd64. The frozen syscall
// package has SYS_RECVMMSG (299) but never grew SYS_SENDMMSG; both are
// spelled out so the pair stays symmetric and greppable.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
