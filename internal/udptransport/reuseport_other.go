//go:build !linux

package udptransport

import "net"

// reusePortAvailable is false off Linux: ListenShards degrades to a single
// socket with identical semantics (SO_REUSEPORT exists on the BSDs too,
// but without the kernel load balancing that makes sharding worthwhile,
// and not at all on Windows — one portable fallback keeps the matrix
// simple; see DESIGN.md §14).
const reusePortAvailable = false

// listenReusePort is never called when reusePortAvailable is false; it
// exists so the package compiles identically on every platform.
func listenReusePort(addr string) (net.PacketConn, error) {
	return net.ListenPacket("udp", addr)
}
