package udptransport

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// startServer runs a server on a loopback port and returns it with a
// cleanup.
func startServer(t *testing.T, h simnet.Handler) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return srv
}

func echoHandler() simnet.Handler {
	return simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		r := dns.NewResponse(q)
		r.Header.RCode = dns.RCodeNoError
		r.Answer = []dns.RR{{
			Name: q.QName(), Type: dns.TypeTXT, Class: dns.ClassIN, TTL: 1,
			Data: &dns.TXTData{Strings: []string{"hello"}},
		}}
		return r, nil
	})
}

func TestQueryRoundTrip(t *testing.T) {
	srv := startServer(t, echoHandler())
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(42, dns.MustName("example.com"), dns.TypeTXT, true)
	resp, err := c.Query(srv.AddrPort(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Header.ID != 42 || len(resp.Answer) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	txt := resp.Answer[0].Data.(*dns.TXTData)
	if txt.Strings[0] != "hello" {
		t.Fatalf("TXT = %v", txt.Strings)
	}
}

func TestHandlerErrorBecomesServfail(t *testing.T) {
	srv := startServer(t, simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		return nil, errors.New("boom")
	}))
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(7, dns.MustName("example.com"), dns.TypeA, false)
	resp, err := c.Query(srv.AddrPort(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Header.RCode != dns.RCodeServFail {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
}

func TestGarbageDropped(t *testing.T) {
	srv := startServer(t, echoHandler())
	// Send garbage, then a valid query; the server must still answer.
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(9, dns.MustName("still.alive"), dns.TypeTXT, false)
	if _, err := c.Query(srv.AddrPort(), q); err != nil {
		t.Fatalf("server dead after garbage: %v", err)
	}
}

func TestOversizedResponseTruncates(t *testing.T) {
	big := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		r := dns.NewResponse(q)
		for i := 0; i < 200; i++ {
			r.Answer = append(r.Answer, dns.RR{
				Name: q.QName(), Type: dns.TypeTXT, Class: dns.ClassIN, TTL: 1,
				Data: &dns.TXTData{Strings: []string{string(make([]byte, 200))}},
			})
		}
		return r, nil
	})
	srv := startServer(t, big)
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(11, dns.MustName("big.example"), dns.TypeTXT, false)
	resp, err := c.Query(srv.AddrPort(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !resp.Header.TC {
		t.Fatal("oversized response not truncated")
	}
	if len(resp.Answer) != 0 {
		t.Fatalf("truncated response carries %d answers", len(resp.Answer))
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := Listen("not-an-addr", echoHandler()); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestServeAfterCloseReturnsErrClosed(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Serve err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
