//go:build linux && batchio && arm64

package udptransport

// recvmmsg/sendmmsg syscall numbers for linux/arm64 (the generic 64-bit
// table).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
