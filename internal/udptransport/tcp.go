package udptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/overload"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// maxTCPMessage bounds a length-prefixed TCP message (the framing allows
// 64 KiB).
const maxTCPMessage = 1 << 16

// TCPServer serves DNS over TCP with RFC 1035 §4.2.2 two-octet length
// framing — the fallback clients use when a UDP response is truncated.
type TCPServer struct {
	ln      net.Listener
	handler simnet.Handler
	// gate, when set, is the shared overload admission controller (the
	// same instance as the UDP listener's, so the window spans both
	// transports).
	gate *overload.Controller

	stats counters

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]bool
}

// ListenTCP binds a TCP socket and prepares to serve h.
func ListenTCP(addr string, h simnet.Handler) (*TCPServer, error) {
	if h == nil {
		return nil, errors.New("udptransport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen tcp %s: %w", addr, err)
	}
	return &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]bool)}, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// AddrPort returns the bound address as a netip.AddrPort.
func (s *TCPServer) AddrPort() netip.AddrPort {
	if ta, ok := s.ln.Addr().(*net.TCPAddr); ok {
		return ta.AddrPort()
	}
	return netip.AddrPort{}
}

// Serve accepts connections until Close. Each connection may carry multiple
// queries; connections are served concurrently.
func (s *TCPServer) Serve() error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("udptransport: accept: %w", err)
		}
		s.stats.conns.Add(1)
		s.track(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.track(conn, false)
			defer func() { _ = conn.Close() }()
			s.serveConn(conn)
		}()
	}
}

// Stats snapshots the transport counters.
func (s *TCPServer) Stats() Stats { return s.stats.snapshot() }

// SetGate installs the overload admission controller; nil serves ungated.
// Must be called before Serve.
func (s *TCPServer) SetGate(g *overload.Controller) { s.gate = g }

func (s *TCPServer) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = true
	} else {
		delete(s.conns, conn)
	}
}

// serveConn pumps length-framed queries on one connection.
func (s *TCPServer) serveConn(conn net.Conn) {
	var src netip.Addr
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		src = ta.AddrPort().Addr()
	}
	for {
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		pkt, err := readFrame(conn)
		if err != nil {
			return // EOF, timeout, or garbage: drop the connection
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return // stop accepting new queries on a draining server
		}
		if s.gate != nil {
			switch v := s.gate.AdmitFast(pkt, src); v {
			case overload.Bypass:
				// Stats scrapes run ungated, same as over UDP.
			case overload.Admitted:
				// TCP handling is synchronous per connection, so waiting in
				// the execution queue here blocks only this client.
				if !s.gate.Acquire() {
					if !s.shed(conn, pkt) {
						return
					}
					continue
				}
				ok := s.answer(conn, pkt, src)
				s.gate.Release()
				if !ok {
					return
				}
				continue
			default: // ShedRateLimited, ShedWindow
				if !s.shed(conn, pkt) {
					return
				}
				continue
			}
		}
		if !s.answer(conn, pkt, src) {
			return
		}
	}
}

// answer decodes and serves one framed query; false drops the connection.
func (s *TCPServer) answer(conn net.Conn, pkt []byte, src netip.Addr) bool {
	q, err := dns.DecodeMessage(pkt)
	if err != nil {
		s.stats.malformed.Add(1)
		return false
	}
	s.stats.queries.Add(1)
	s.stats.enter()
	resp, err := s.handler.HandleQuery(q, src)
	if err != nil {
		resp = dns.NewResponse(q)
		resp.Header.RCode = dns.RCodeServFail
		s.stats.servfails.Add(1)
	}
	s.stats.leave()
	if err := writeFrame(conn, resp); err != nil {
		return false
	}
	s.stats.responses.Add(1)
	return true
}

// shed writes the length-framed pre-encoded REFUSED response for one raw
// query; false drops the connection.
func (s *TCPServer) shed(conn net.Conn, pkt []byte) bool {
	if len(pkt) < overload.HeaderLen {
		s.stats.malformed.Add(1)
		return false
	}
	var buf [2 + overload.HeaderLen]byte
	binary.BigEndian.PutUint16(buf[:2], overload.HeaderLen)
	overload.RefusedInto(buf[2:], pkt)
	if _, err := conn.Write(buf[:]); err != nil {
		return false
	}
	s.stats.responses.Add(1)
	return true
}

// Close stops the server and tears down live connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// Shutdown gracefully drains the server: the listener closes (no new
// connections), established connections may finish the query currently
// being handled but accept no further ones, and idle connections are given
// a short read window before being torn down. Returns ErrDrainTimeout when
// live connections outlast the deadline.
func (s *TCPServer) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	// Cap how long an idle connection can sit blocked in readFrame; the
	// draining flag makes any frame that does arrive a no-op.
	deadline := time.Now().Add(timeout)
	for conn := range s.conns {
		_ = conn.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	err := s.ln.Close()

	drained := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.conns) == 0
	}
	for end := time.Now().Add(timeout); time.Now().Before(end); {
		if drained() {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Deadline passed: tear down whatever is left.
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if !drained() {
		return ErrDrainTimeout
	}
	return err
}

// readFrame reads one length-prefixed message.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(lenBuf[:]))
	if n == 0 {
		return nil, errors.New("udptransport: zero-length tcp frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed message.
func writeFrame(w io.Writer, m *dns.Message) error {
	wire, err := m.Encode()
	if err != nil {
		return err
	}
	if len(wire) >= maxTCPMessage {
		return fmt.Errorf("udptransport: message exceeds tcp frame (%d bytes)", len(wire))
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(wire)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// QueryTCP sends one query over TCP.
func (c *Client) QueryTCP(server netip.AddrPort, q *dns.Message) (*dns.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	conn, err := net.DialTimeout("tcp", server.String(), timeout)
	if err != nil {
		return nil, fmt.Errorf("udptransport: dial tcp %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, q); err != nil {
		return nil, fmt.Errorf("udptransport: tcp send: %w", err)
	}
	pkt, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("udptransport: tcp receive: %w", err)
	}
	resp, err := dns.DecodeMessage(pkt)
	if err != nil {
		return nil, fmt.Errorf("udptransport: tcp decode: %w", err)
	}
	if resp.Header.ID != q.Header.ID {
		return nil, fmt.Errorf("udptransport: tcp response ID %d does not match query %d",
			resp.Header.ID, q.Header.ID)
	}
	return resp, nil
}

// QueryWithFallback queries over UDP and retries over TCP when the response
// arrives truncated (RFC 7766 client behavior). The TCP port is assumed to
// equal the UDP port.
func (c *Client) QueryWithFallback(server netip.AddrPort, q *dns.Message) (*dns.Message, error) {
	resp, err := c.Query(server, q)
	if err != nil {
		return nil, err
	}
	if !resp.Header.TC {
		return resp, nil
	}
	return c.QueryTCP(server, q)
}
