package udptransport

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

func startTCPServer(t *testing.T, h simnet.Handler) *TCPServer {
	t.Helper()
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return srv
}

func TestTCPQueryRoundTrip(t *testing.T) {
	srv := startTCPServer(t, echoHandler())
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(21, dns.MustName("example.com"), dns.TypeTXT, true)
	resp, err := c.QueryTCP(srv.AddrPort(), q)
	if err != nil {
		t.Fatalf("QueryTCP: %v", err)
	}
	if resp.Header.ID != 21 || len(resp.Answer) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPMultipleQueriesOneConnection(t *testing.T) {
	srv := startTCPServer(t, echoHandler())
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	for i := uint16(1); i <= 3; i++ {
		q := dns.NewQuery(i, dns.MustName("multi.example"), dns.TypeTXT, false)
		if err := writeFrame(conn, q); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		pkt, err := readFrame(conn)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		resp, err := dns.DecodeMessage(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != i {
			t.Fatalf("response %d has ID %d", i, resp.Header.ID)
		}
	}
}

// bigHandler produces a response too large for UDP but fine for TCP.
func bigHandler() simnet.Handler {
	return simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		r := dns.NewResponse(q)
		for i := 0; i < 40; i++ {
			r.Answer = append(r.Answer, dns.RR{
				Name: q.QName(), Type: dns.TypeTXT, Class: dns.ClassIN, TTL: 1,
				Data: &dns.TXTData{Strings: []string{string(make([]byte, 200))}},
			})
		}
		return r, nil
	})
}

func TestTruncationFallbackToTCP(t *testing.T) {
	// UDP and TCP servers on the same port, like a real deployment.
	udpSrv, err := Listen("127.0.0.1:0", bigHandler())
	if err != nil {
		t.Fatal(err)
	}
	port := udpSrv.AddrPort().Port()
	tcpSrv, err := ListenTCP(udpSrv.AddrPort().String(), bigHandler())
	if err != nil {
		t.Fatalf("binding TCP on UDP's port: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = udpSrv.Serve() }()
	go func() { defer wg.Done(); _ = tcpSrv.Serve() }()
	t.Cleanup(func() {
		_ = udpSrv.Close()
		_ = tcpSrv.Close()
		wg.Wait()
	})

	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(9, dns.MustName("big.example"), dns.TypeTXT, false)

	// Plain UDP truncates…
	udpResp, err := c.Query(netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), port), q)
	if err != nil {
		t.Fatal(err)
	}
	if !udpResp.Header.TC {
		t.Fatal("expected truncation over UDP")
	}
	// …the fallback retrieves the full answer.
	full, err := c.QueryWithFallback(netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), port), q)
	if err != nil {
		t.Fatalf("QueryWithFallback: %v", err)
	}
	if full.Header.TC || len(full.Answer) != 40 {
		t.Fatalf("fallback answer: tc=%t answers=%d", full.Header.TC, len(full.Answer))
	}
}

func TestQueryWithFallbackNoTruncation(t *testing.T) {
	srv := startServer(t, echoHandler())
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(5, dns.MustName("small.example"), dns.TypeTXT, false)
	resp, err := c.QueryWithFallback(srv.AddrPort(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.TC || len(resp.Answer) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPServerErrorBecomesServfail(t *testing.T) {
	srv := startTCPServer(t, simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		return nil, errors.New("boom")
	}))
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(7, dns.MustName("x.example"), dns.TypeA, false)
	resp, err := c.QueryTCP(srv.AddrPort(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dns.RCodeServFail {
		t.Fatalf("rcode = %s", resp.Header.RCode)
	}
}

func TestTCPServeAfterClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Serve err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestTCPListenValidation(t *testing.T) {
	if _, err := ListenTCP("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := ListenTCP("bogus", echoHandler()); err == nil {
		t.Fatal("bad address accepted")
	}
}
