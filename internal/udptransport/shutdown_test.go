package udptransport

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// slowHandler blocks each query until release is closed, so shutdown tests
// can hold queries in flight deliberately.
func slowHandler(entered chan<- struct{}, release <-chan struct{}) simnet.Handler {
	return simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		entered <- struct{}{}
		<-release
		r := dns.NewResponse(q)
		r.Header.RCode = dns.RCodeNoError
		return r, nil
	})
}

func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", slowHandler(entered, release))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetWorkers(4)
	go func() { _ = srv.Serve() }()

	// Put two queries in flight. The short client timeout keeps the test
	// fast when the drained responses race the socket close and drop.
	c := &Client{Timeout: 500 * time.Millisecond}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			q := dns.NewQuery(id, dns.MustName("drain.example"), dns.TypeA, false)
			// The response races the socket close; the exchange may fail,
			// the point is that the handler completes.
			_, _ = c.Query(srv.AddrPort(), q)
		}(uint16(i + 1))
	}
	<-entered
	<-entered

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(2 * time.Second) }()
	select {
	case <-done:
		t.Fatal("Shutdown returned while queries were still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown hung after handlers released")
	}
	wg.Wait()
	st := srv.Stats()
	if st.Queries != 2 || st.InFlight != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
	if st.MaxInFlight != 2 {
		t.Fatalf("max in-flight = %d, want 2", st.MaxInFlight)
	}
}

func TestShutdownTimesOutOnStuckHandler(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed before Shutdown returns
	srv, err := Listen("127.0.0.1:0", slowHandler(entered, release))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetWorkers(2)
	go func() { _ = srv.Serve() }()
	c := &Client{Timeout: 200 * time.Millisecond}
	go func() {
		q := dns.NewQuery(3, dns.MustName("stuck.example"), dns.TypeA, false)
		_, _ = c.Query(srv.AddrPort(), q)
	}()
	<-entered
	if err := srv.Shutdown(100 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Shutdown = %v, want ErrDrainTimeout", err)
	}
	close(release)
}

func TestUDPStatsCounters(t *testing.T) {
	srv := startServer(t, echoHandler())
	c := &Client{Timeout: 2 * time.Second}
	for i := 0; i < 3; i++ {
		q := dns.NewQuery(uint16(i+1), dns.MustName("count.example"), dns.TypeTXT, false)
		if _, err := c.Query(srv.AddrPort(), q); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Queries != 3 || st.Responses != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Malformed != 0 || st.Truncated != 0 || st.ServFails != 0 {
		t.Fatalf("unexpected error counters: %+v", st)
	}
}

func TestTCPShutdownStopsNewQueries(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(21, dns.MustName("tcp.example"), dns.TypeTXT, false)
	if _, err := c.QueryTCP(srv.AddrPort(), q); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := c.QueryTCP(srv.AddrPort(), q); err == nil {
		t.Fatal("query accepted after shutdown")
	}
	st := srv.Stats()
	if st.Queries != 1 || st.Conns != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatsPlus(t *testing.T) {
	a := Stats{Queries: 2, Responses: 2, MaxInFlight: 3, Conns: 1}
	b := Stats{Queries: 5, Malformed: 1, Truncated: 2, ServFails: 1, MaxInFlight: 7}
	sum := a.Plus(b)
	if sum.Queries != 7 || sum.Responses != 2 || sum.Malformed != 1 ||
		sum.Truncated != 2 || sum.ServFails != 1 || sum.Conns != 1 {
		t.Fatalf("sum = %+v", sum)
	}
	if sum.MaxInFlight != 7 {
		t.Fatalf("watermark = %d, want max not sum", sum.MaxInFlight)
	}
}
