//go:build linux && batchio && (amd64 || arm64)

// Batched datagram I/O (DESIGN.md §14): with the `batchio` build tag each
// shard drains up to batchSize datagrams per poller wakeup via recvmmsg
// and flushes its REFUSED sheds with one sendmmsg, cutting the syscall
// count per packet under storm load. Everything is raw syscall.Syscall6
// over hand-rolled LP64 mmsghdr layouts — stdlib only, go.mod untouched.
// The sockets stay in non-blocking mode and park on the runtime netpoller
// through syscall.RawConn, so goroutine scheduling and Close/drain
// semantics are identical to the scalar loop.

package udptransport

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"github.com/dnsprivacy/lookaside/internal/overload"
)

// batchSize is how many datagrams one recvmmsg wakeup may drain.
const batchSize = 32

// iovec, msghdr, and mmsghdr mirror the Linux LP64 ABI layouts. syscall
// exports Iovec/Msghdr too, but spelling them out keeps the padding the
// kernel expects explicit and versions this file against exactly what
// recvmmsg/sendmmsg dereference.
type iovec struct {
	base *byte
	len  uint64
}

type msghdr struct {
	name       *byte
	namelen    uint32
	_          [4]byte
	iov        *iovec
	iovlen     uint64
	control    *byte
	controllen uint64
	flags      int32
	_          [4]byte
}

type mmsghdr struct {
	hdr msghdr
	len uint32
	_   [4]byte
}

// batchTested observes (in tests) that the batched path actually ran.
var batchTested atomic.Bool

// batchIO owns one shard's recvmmsg/sendmmsg scratch state: receive
// buffers and sockaddr slots for a full batch, plus a shed batch of
// REFUSED headers flushed with a single sendmmsg.
type batchIO struct {
	rc    syscall.RawConn
	bufs  [batchSize]*[maxPacket]byte
	names [batchSize]syscall.RawSockaddrInet6
	iovs  [batchSize]iovec
	hdrs  [batchSize]mmsghdr

	shedPkts  [batchSize][overload.HeaderLen]byte
	shedIovs  [batchSize]iovec
	shedHdrs  [batchSize]mmsghdr
	shedCount int
}

func newBatchIO(sh *shard) *batchIO {
	if sh.uc == nil {
		return nil
	}
	rc, err := sh.uc.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{rc: rc}
	for i := range b.bufs {
		b.bufs[i] = sh.getBuf()
	}
	return b
}

// recv fills the batch with one recvmmsg, parking on the netpoller until
// the socket is readable. Returns the number of datagrams received.
func (b *batchIO) recv() (int, error) {
	for i := range b.hdrs {
		// Re-prep every slot: the kernel overwrote namelen and msg_len on
		// the previous round, and dispatch may have swapped buffers out.
		b.iovs[i] = iovec{base: &b.bufs[i][0], len: maxPacket}
		b.hdrs[i] = mmsghdr{hdr: msghdr{
			name:    (*byte)(unsafe.Pointer(&b.names[i])),
			namelen: uint32(unsafe.Sizeof(b.names[i])),
			iov:     &b.iovs[i],
			iovlen:  1,
		}}
	}
	var n int
	var operr error
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(len(b.hdrs)),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		switch errno {
		case 0:
			n = int(r1)
			return true
		case syscall.EAGAIN:
			return false // park until readable
		default:
			operr = errno
			return true
		}
	})
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	return n, nil
}

// from decodes the kernel-written sockaddr of batch slot i.
func (b *batchIO) from(i int) netip.AddrPort {
	rsa := &b.names[i]
	switch rsa.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), ntohs(sa.Port))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(rsa.Addr), ntohs(rsa.Port))
	}
	return netip.AddrPort{}
}

// ntohs converts a raw network-order sockaddr port to host order.
func ntohs(v uint16) uint16 { return v<<8 | v>>8 }

// queueShed stages one REFUSED answer for slot i's source, reusing the
// sockaddr (and its kernel-reported length) exactly as received.
func (b *batchIO) queueShed(sh *shard, pkt []byte, i int) {
	if len(pkt) < overload.HeaderLen {
		sh.stats.malformed.Add(1)
		return
	}
	k := b.shedCount
	overload.RefusedInto(b.shedPkts[k][:], pkt)
	b.shedIovs[k] = iovec{base: &b.shedPkts[k][0], len: overload.HeaderLen}
	b.shedHdrs[k] = mmsghdr{hdr: msghdr{
		name:    (*byte)(unsafe.Pointer(&b.names[i])),
		namelen: b.hdrs[i].hdr.namelen,
		iov:     &b.shedIovs[k],
		iovlen:  1,
	}}
	b.shedCount++
}

// flushSheds answers every staged shed with as few sendmmsg calls as the
// socket's send buffer allows. On a closing socket the rest are dropped —
// sheds are best-effort by definition.
func (b *batchIO) flushSheds(sh *shard) {
	cnt := b.shedCount
	b.shedCount = 0
	sent := 0
	for sent < cnt {
		var n int
		var operr error
		err := b.rc.Write(func(fd uintptr) bool {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.shedHdrs[sent])), uintptr(cnt-sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				n = int(r1)
				return true
			case syscall.EAGAIN:
				return false
			default:
				operr = errno
				return true
			}
		})
		if err != nil || operr != nil {
			return
		}
		sent += n
		sh.stats.responses.Add(uint64(n))
	}
}

// runLoop drives the shard with batched receives. Falls back to the
// scalar loop when the socket cannot expose a RawConn.
func (sh *shard) runLoop() error {
	b := newBatchIO(sh)
	if b == nil {
		return sh.scalarLoop()
	}
	batchTested.Store(true)
	return sh.batchLoop(b)
}

func (sh *shard) batchLoop(b *batchIO) error {
	defer sh.wg.Done()
	if sh.jobs != nil {
		defer close(sh.jobs)
	}
	s := sh.srv
	for {
		n, err := b.recv()
		if err != nil {
			if s.closed.Load() {
				return ErrClosed
			}
			return fmt.Errorf("udptransport: recvmmsg: %w", err)
		}
		if s.closed.Load() {
			return ErrClosed
		}
		for i := 0; i < n; i++ {
			pktLen := int(b.hdrs[i].len)
			buf := b.bufs[i]
			from := b.from(i)
			if s.gate != nil {
				switch s.gate.AdmitFast(buf[:pktLen], from.Addr()) {
				case overload.Bypass:
					b.bufs[i] = sh.getBuf() // slot loses its buffer to the goroutine
					sh.wg.Add(1)
					go func(buf *[maxPacket]byte, pktLen int, from netip.AddrPort) {
						defer sh.wg.Done()
						sh.handle(buf[:pktLen], from)
						sh.putBuf(buf)
					}(buf, pktLen, from)
				case overload.Admitted:
					b.bufs[i] = sh.getBuf()
					sh.wg.Add(1)
					sh.jobs <- job{buf: buf, n: pktLen, from: from, t: time.Now(), admitted: true}
				default: // ShedRateLimited, ShedWindow
					// The REFUSED header is copied out; the slot keeps
					// its buffer for the next recv.
					b.queueShed(sh, buf[:pktLen], i)
				}
				continue
			}
			if sh.jobs == nil {
				sh.handle(buf[:pktLen], from)
				continue
			}
			b.bufs[i] = sh.getBuf()
			sh.wg.Add(1)
			sh.jobs <- job{buf: buf, n: pktLen, from: from}
		}
		b.flushSheds(sh)
	}
}
