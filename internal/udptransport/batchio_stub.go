//go:build !(linux && batchio && (amd64 || arm64))

package udptransport

// runLoop is the shard read loop. Without the batchio build tag (or on
// platforms where the raw recvmmsg/sendmmsg path is not wired up) it is
// the scalar one-datagram-per-wakeup loop.
func (sh *shard) runLoop() error { return sh.scalarLoop() }
