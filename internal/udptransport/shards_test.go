package udptransport

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// startShardedServer runs a multi-shard server on a loopback port with the
// given worker-pool width (applied before Serve — SetWorkers is not safe
// afterwards). On platforms without SO_REUSEPORT the server transparently
// degrades to one shard; the tests below assert behavior, not shard count,
// except where they check the fallback contract explicitly.
func startShardedServer(t *testing.T, h simnet.Handler, n, workers int) *Server {
	t.Helper()
	srv, err := ListenShards("127.0.0.1:0", h, n)
	if err != nil {
		t.Fatalf("ListenShards: %v", err)
	}
	srv.SetWorkers(workers)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve()
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return srv
}

func TestListenShardsCount(t *testing.T) {
	srv, err := ListenShards("127.0.0.1:0", echoHandler(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	want := 4
	if !reusePortAvailable {
		want = 1 // graceful single-socket fallback off Linux
	}
	if got := srv.Shards(); got != want {
		t.Fatalf("Shards() = %d, want %d", got, want)
	}
	// All shards share one concrete port.
	port := srv.AddrPort().Port()
	if port == 0 {
		t.Fatal("unresolved port")
	}

	// n <= 0 degrades to one socket, never an error.
	one, err := ListenShards("127.0.0.1:0", echoHandler(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = one.Close() }()
	if one.Shards() != 1 {
		t.Fatalf("Shards() = %d for n=0, want 1", one.Shards())
	}
}

func TestServeTwiceRejected(t *testing.T) {
	srv := startShardedServer(t, echoHandler(), 2, 2)
	// A round trip proves the background Serve owns the read loops before
	// the duplicate call is made — otherwise this call could win the race
	// and block serving instead of being rejected.
	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(1, dns.MustName("twice.example"), dns.TypeTXT, false)
	if _, err := c.Query(srv.AddrPort(), q); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("second Serve = %v, want a serve-twice error", err)
	}
}

// TestShardedQueriesSpreadAndAnswer drives queries from many distinct
// client sockets so the kernel's 4-tuple hash can spread them, and checks
// every one is answered and the merged counters account for all of them.
func TestShardedQueriesSpreadAndAnswer(t *testing.T) {
	srv := startShardedServer(t, echoHandler(), 4, 4)
	const total = 64
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			c := &Client{Timeout: 2 * time.Second}
			q := dns.NewQuery(id, dns.MustName("spread.example"), dns.TypeTXT, false)
			resp, err := c.Query(srv.AddrPort(), q)
			if err != nil {
				errs <- err
				return
			}
			if resp.Header.ID != id {
				errs <- errors.New("ID mismatch in matched response")
			}
		}(uint16(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Queries != total || st.Responses != total {
		t.Fatalf("merged stats = %+v, want %d queries and responses", st, total)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", st.InFlight)
	}
}

func TestShardedShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv, err := ListenShards("127.0.0.1:0", slowHandler(entered, release), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Workers split per shard (ceil(16/4) = 4 each), so even if the kernel
	// hashes every client onto one shard all four queries enter together.
	srv.SetWorkers(16)
	go func() { _ = srv.Serve() }()

	// Hold four queries in flight from four distinct sockets; the kernel
	// may land them on any subset of shards — the drain must cover all.
	c := &Client{Timeout: 500 * time.Millisecond}
	var wg sync.WaitGroup
	const inflight = 4
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			q := dns.NewQuery(id, dns.MustName("drain.example"), dns.TypeA, false)
			_, _ = c.Query(srv.AddrPort(), q)
		}(uint16(i + 1))
	}
	for i := 0; i < inflight; i++ {
		<-entered
	}

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(2 * time.Second) }()
	select {
	case <-done:
		t.Fatal("Shutdown returned while queries were still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown hung after handlers released")
	}
	wg.Wait()
	st := srv.Stats()
	if st.Queries != inflight || st.InFlight != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
	// Merged MaxInFlight sums per-shard watermarks, so it is exact here
	// regardless of how the kernel spread the four clients.
	if st.MaxInFlight != inflight {
		t.Fatalf("merged max in-flight = %d, want %d", st.MaxInFlight, inflight)
	}
}

func TestShardedShutdownTimesOutOnStuckHandler(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed before Shutdown returns
	srv, err := ListenShards("127.0.0.1:0", slowHandler(entered, release), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetWorkers(2)
	go func() { _ = srv.Serve() }()
	c := &Client{Timeout: 200 * time.Millisecond}
	go func() {
		q := dns.NewQuery(3, dns.MustName("stuck.example"), dns.TypeA, false)
		_, _ = c.Query(srv.AddrPort(), q)
	}()
	<-entered
	if err := srv.Shutdown(100 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Shutdown = %v, want ErrDrainTimeout", err)
	}
	close(release)
}

// TestShardStatsMonotoneUnderLoad is the transport twin of the pool's
// monotone-stats test: client goroutines hammer a sharded server while a
// scraper repeatedly merges per-shard counters, and no merged counter may
// ever go backwards — each shard's snapshot is independent, so the merge
// must tolerate reading shard A before shard B advances. Run with -race.
func TestShardStatsMonotoneUnderLoad(t *testing.T) {
	srv := startShardedServer(t, echoHandler(), 4, 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &Client{Timeout: 2 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := dns.NewQuery(uint16(i%65535+1), dns.MustName("mono.example"), dns.TypeTXT, false)
				if _, err := c.Query(srv.AddrPort(), q); err != nil {
					// Sends race server close at test end; only report
					// errors while the test is still running.
					select {
					case <-stop:
					default:
						t.Errorf("client %d: %v", g, err)
					}
					return
				}
			}
		}(g)
	}

	var prev Stats
	deadline := time.Now().Add(500 * time.Millisecond)
	for reads := 0; time.Now().Before(deadline); reads++ {
		st := srv.Stats()
		if st.Queries < prev.Queries || st.Responses < prev.Responses ||
			st.Malformed < prev.Malformed || st.Truncated < prev.Truncated ||
			st.ServFails < prev.ServFails || st.MaxInFlight < prev.MaxInFlight {
			t.Fatalf("merged counters went backwards on read %d:\n prev %+v\n  now %+v", reads, prev, st)
		}
		prev = st
	}
	close(stop)
	wg.Wait()
	// A final quiescent read still sits at or past the last observation.
	if st := srv.Stats(); st.Queries < prev.Queries {
		t.Fatalf("final stats below last observed: %+v < %+v", st, prev)
	}
	if st := srv.Stats(); st.Queries == 0 {
		t.Fatal("no queries observed — load loop never ran")
	}
}

// TestClientDiscardsStaleDatagrams pins the client re-read contract: a
// garbage datagram and a wrong-ID response arriving before the real answer
// are skipped (and counted), not returned as an error.
func TestClientDiscardsStaleDatagrams(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pc.Close() }()
	serverErr := make(chan error, 1)
	go func() {
		buf := make([]byte, maxPacket)
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			serverErr <- err
			return
		}
		q, err := dns.DecodeMessage(buf[:n])
		if err != nil {
			serverErr <- err
			return
		}
		// 1: garbage. 2: well-formed response under the wrong ID (a late
		// duplicate from a previous exchange on the same port). 3: the
		// real answer.
		if _, err := pc.WriteTo([]byte{0xde, 0xad}, from); err != nil {
			serverErr <- err
			return
		}
		stale := dns.NewResponse(q)
		stale.Header.ID = q.Header.ID + 1
		wire, err := stale.Encode()
		if err != nil {
			serverErr <- err
			return
		}
		if _, err := pc.WriteTo(wire, from); err != nil {
			serverErr <- err
			return
		}
		real := dns.NewResponse(q)
		real.Header.RCode = dns.RCodeNoError
		wire, err = real.Encode()
		if err != nil {
			serverErr <- err
			return
		}
		_, err = pc.WriteTo(wire, from)
		serverErr <- err
	}()

	c := &Client{Timeout: 2 * time.Second}
	q := dns.NewQuery(0x5151, dns.MustName("stale.example"), dns.TypeA, false)
	addr := pc.LocalAddr().(*net.UDPAddr).AddrPort()
	resp, err := c.Query(netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), addr.Port()), q)
	if err != nil {
		t.Fatalf("Query failed instead of re-reading past stale datagrams: %v", err)
	}
	if resp.Header.ID != q.Header.ID {
		t.Fatalf("matched response has ID %d, want %d", resp.Header.ID, q.Header.ID)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("fake server: %v", err)
	}
	if d := c.Discards(); d != 2 {
		t.Fatalf("Discards() = %d, want 2 (one garbage, one wrong-ID)", d)
	}
}
