package loadgen

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/metrics"
)

// Mode selects how the replay is paced.
type Mode int

const (
	// ModeOpen replays the trace open-loop: queries launch at their
	// scheduled times (scaled by Compress) whether or not earlier ones have
	// completed, up to the bounded in-flight window. Overload shows up as
	// schedule lateness, exactly like a real resolver falling behind its
	// arrival process.
	ModeOpen Mode = iota
	// ModeClosed replays closed-loop: each worker issues its next query as
	// soon as the previous one completes, ignoring schedule times. This
	// measures the serving tier's maximum sustainable throughput.
	ModeClosed
)

// ParseMode maps the CLI spelling to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "open":
		return ModeOpen, nil
	case "closed":
		return ModeClosed, nil
	}
	return 0, fmt.Errorf("loadgen: unknown mode %q (want open or closed)", s)
}

func (m Mode) String() string {
	if m == ModeOpen {
		return "open"
	}
	return "closed"
}

// Config parameterizes one replay run.
type Config struct {
	// Server is the resolver under test (UDP and TCP on the same port).
	Server netip.AddrPort
	// Schedule shapes the deterministic query schedule.
	Schedule ScheduleConfig
	// Source supplies per-minute query counts (dataset.TraceReader.Next or
	// MinuteSource over an in-memory trace).
	Source func() (int, error)
	// Names maps a population index to the domain to query.
	Names func(int) dns.Name
	// QType is the query type (default A).
	QType dns.Type
	// DNSSECOK sets the EDNS DO bit on every query.
	DNSSECOK bool

	// Mode is the pacing discipline.
	Mode Mode
	// Compress divides trace time to get wall time in open-loop mode: 60
	// replays each trace minute in one wall second. Default 1 (real time).
	Compress float64
	// Workers is the bounded in-flight window: each worker keeps at most
	// one query outstanding, so at most Workers queries are on the wire.
	// Workers also own the sockets — each holds one connected UDP socket
	// (and a lazy TCP connection for truncation fallback), acting as a
	// cluster of stub clients behind distinct source ports. Default 64.
	Workers int
	// Timeout bounds each attempt (default 2s).
	Timeout time.Duration
	// Retries is how many times a timed-out query is re-sent (same ID, so
	// a late answer to an earlier attempt still completes the query).
	Retries int

	// Progress, when non-nil, is called from the dispatcher at every trace
	// minute boundary with the minute just finished and total sent so far.
	Progress func(minute int, sent int64)
}

// Counters are the client-side outcome tallies of a run.
type Counters struct {
	// Sent counts queries dispatched; Completed counts those that got any
	// well-formed response (whatever the RCode).
	Sent      int64
	Completed int64
	// Timeouts counts queries abandoned after all attempts; Retries counts
	// re-sent attempts.
	Timeouts int64
	Retries  int64
	// Truncated counts TC=1 UDP responses; TCPFallbacks counts the TCP
	// retries they triggered; TCPErrors counts fallbacks that then failed.
	Truncated    int64
	TCPFallbacks int64
	TCPErrors    int64
	// RCode tallies over completed queries. Refused counts queries the
	// server shed (REFUSED — the overload controller's cheap answer);
	// these complete but do not count toward goodput or the latency
	// histogram.
	ServFails   int64
	NXDomains   int64
	Refused     int64
	OtherRCodes int64
	// Stale counts datagrams read whose ID matched no outstanding query
	// (late answers to attempts already abandoned).
	Stale int64
}

// Plus returns the field-wise sum.
func (c Counters) Plus(o Counters) Counters {
	return Counters{
		Sent:         c.Sent + o.Sent,
		Completed:    c.Completed + o.Completed,
		Timeouts:     c.Timeouts + o.Timeouts,
		Retries:      c.Retries + o.Retries,
		Truncated:    c.Truncated + o.Truncated,
		TCPFallbacks: c.TCPFallbacks + o.TCPFallbacks,
		TCPErrors:    c.TCPErrors + o.TCPErrors,
		ServFails:    c.ServFails + o.ServFails,
		NXDomains:    c.NXDomains + o.NXDomains,
		Refused:      c.Refused + o.Refused,
		OtherRCodes:  c.OtherRCodes + o.OtherRCodes,
		Stale:        c.Stale + o.Stale,
	}
}

// Runner replays a schedule against a live server.
type Runner struct {
	cfg Config
}

// New validates the config and returns a ready runner.
func New(cfg Config) (*Runner, error) {
	if !cfg.Server.IsValid() {
		return nil, errors.New("loadgen: no server address")
	}
	if cfg.Names == nil {
		return nil, errors.New("loadgen: nil name table")
	}
	if cfg.Source == nil {
		return nil, errors.New("loadgen: nil trace source")
	}
	if cfg.QType == 0 {
		cfg.QType = dns.TypeA
	}
	if cfg.Compress <= 0 {
		cfg.Compress = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	return &Runner{cfg: cfg}, nil
}

// dispatch is one scheduled query in flight to a worker; due is its
// wall-clock launch target (zero in closed-loop mode).
type dispatch struct {
	ev  Event
	due time.Time
}

// Run replays the schedule until the trace ends, the MaxQueries cap hits,
// or ctx is cancelled (the report then covers what ran). Queries of one
// client always go to the same worker, preserving per-client ordering.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	sched, err := NewSchedule(cfg.Schedule, cfg.Source)
	if err != nil {
		return nil, err
	}

	workers := make([]*worker, cfg.Workers)
	chans := make([]chan dispatch, cfg.Workers)
	var wg sync.WaitGroup
	for i := range workers {
		w, err := newWorker(&cfg)
		if err != nil {
			for _, prev := range workers[:i] {
				prev.close()
			}
			return nil, err
		}
		workers[i] = w
		chans[i] = make(chan dispatch, 64)
		wg.Add(1)
		go func(w *worker, ch chan dispatch) {
			defer wg.Done()
			for d := range ch {
				w.doQuery(d)
			}
		}(w, chans[i])
	}

	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	var sent int64
	minute := -1
	runErr := func() error {
		for {
			ev, err := sched.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("loadgen: reading trace: %w", err)
			}
			if m := int(ev.At / time.Minute); m != minute {
				if minute >= 0 && cfg.Progress != nil {
					cfg.Progress(minute, sent)
				}
				minute = m
			}
			d := dispatch{ev: ev}
			if cfg.Mode == ModeOpen {
				d.due = start.Add(time.Duration(float64(ev.At) / cfg.Compress))
				if wait := time.Until(d.due); wait > 0 {
					timer.Reset(wait)
					select {
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
						return ctx.Err()
					}
				}
			}
			select {
			case chans[int(ev.Client)%cfg.Workers] <- d:
				sent++
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if minute >= 0 && cfg.Progress != nil {
		cfg.Progress(minute, sent)
	}
	wall := time.Since(start)

	rep := &Report{
		Mode:     cfg.Mode,
		Clients:  cfg.Schedule.Clients,
		Workers:  cfg.Workers,
		Seed:     cfg.Schedule.Seed,
		Wall:     wall,
		Latency:  metrics.NewHistogram(),
		Fallback: metrics.NewHistogram(),
	}
	for _, w := range workers {
		rep.Counters = rep.Counters.Plus(w.c)
		rep.Latency.Merge(w.lat)
		rep.Fallback.Merge(w.fb)
		if w.maxLate > rep.MaxLateness {
			rep.MaxLateness = w.maxLate
		}
		w.close()
	}
	if wall > 0 {
		rep.QPS = float64(rep.Completed) / wall.Seconds()
		rep.GoodputQPS = float64(rep.Goodput()) / wall.Seconds()
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
		return rep, runErr
	}
	return rep, nil
}

// worker is one replay lane: a connected UDP socket, a lazy TCP fallback
// connection, and single-threaded metric state. All clients whose index
// hashes to this worker issue their queries through it, in order.
type worker struct {
	cfg *Config
	udp net.Conn
	tcp net.Conn
	buf [4096]byte

	idSeq   uint16
	c       Counters
	lat     *metrics.Histogram
	fb      *metrics.Histogram
	maxLate time.Duration
}

func newWorker(cfg *Config) (*worker, error) {
	conn, err := net.Dial("udp", cfg.Server.String())
	if err != nil {
		return nil, fmt.Errorf("loadgen: dial %s: %w", cfg.Server, err)
	}
	return &worker{
		cfg: cfg,
		udp: conn,
		lat: metrics.NewHistogram(),
		fb:  metrics.NewHistogram(),
	}, nil
}

func (w *worker) close() {
	_ = w.udp.Close()
	if w.tcp != nil {
		_ = w.tcp.Close()
		w.tcp = nil
	}
}

// doQuery runs one scheduled query to completion: UDP with per-attempt
// timeout and retry, then TCP fallback if the response came back truncated.
// Latency is measured from the first send to the final response, so a
// fallback's total includes both the truncated UDP leg and the TCP leg;
// the TCP leg alone is additionally recorded in the fallback histogram.
func (w *worker) doQuery(d dispatch) {
	name := w.cfg.Names(int(d.ev.Name))
	w.idSeq++
	q := dns.NewQuery(w.idSeq, name, w.cfg.QType, w.cfg.DNSSECOK)
	wire, err := q.Encode()
	if err != nil {
		// Population names always encode; treat failure as a timeout so it
		// is visible rather than silently dropped.
		w.c.Sent++
		w.c.Timeouts++
		return
	}

	start := time.Now()
	if !d.due.IsZero() {
		if late := start.Sub(d.due); late > w.maxLate {
			w.maxLate = late
		}
	}
	w.c.Sent++

	resp := w.exchangeUDP(wire, q.Header.ID)
	if resp == nil {
		w.c.Timeouts++
		return
	}
	if resp.Header.TC {
		w.c.Truncated++
		w.c.TCPFallbacks++
		fbStart := time.Now()
		tcpResp, err := w.exchangeTCP(wire, q.Header.ID)
		if err != nil {
			w.c.TCPErrors++
			w.c.Timeouts++
			return
		}
		w.fb.Record(time.Since(fbStart))
		resp = tcpResp
	}
	if resp.Header.RCode == dns.RCodeRefused {
		// A shed: the server answered, but with its overload REFUSED. Keep
		// it out of the latency histogram so percentiles describe real
		// resolutions, not microsecond-fast rejections.
		w.c.Completed++
		w.c.Refused++
		return
	}
	w.lat.Record(time.Since(start))
	w.c.Completed++
	switch resp.Header.RCode {
	case dns.RCodeNoError:
	case dns.RCodeServFail:
		w.c.ServFails++
	case dns.RCodeNXDomain:
		w.c.NXDomains++
	default:
		w.c.OtherRCodes++
	}
}

// exchangeUDP sends the query and reads until a response with the matching
// ID arrives, retrying on per-attempt timeout. Returns nil when every
// attempt timed out. Stale datagrams (IDs of abandoned earlier queries on
// this socket) are counted and skipped; because retries reuse the query's
// ID, a late answer to attempt N completes attempt N+1.
func (w *worker) exchangeUDP(wire []byte, id uint16) *dns.Message {
	for attempt := 0; attempt <= w.cfg.Retries; attempt++ {
		if attempt > 0 {
			w.c.Retries++
		}
		if _, err := w.udp.Write(wire); err != nil {
			continue
		}
		deadline := time.Now().Add(w.cfg.Timeout)
		if err := w.udp.SetReadDeadline(deadline); err != nil {
			return nil
		}
		for {
			n, err := w.udp.Read(w.buf[:])
			if err != nil {
				break // timeout (or socket error): next attempt
			}
			resp, err := dns.DecodeMessage(w.buf[:n])
			if err != nil {
				continue // garbage datagram
			}
			if resp.Header.ID != id {
				w.c.Stale++
				continue
			}
			return resp
		}
	}
	return nil
}

// exchangeTCP completes a truncated query over TCP (RFC 7766), keeping one
// connection per worker across fallbacks. A dead cached connection (the
// server idles them out after 30s) gets one transparent redial.
func (w *worker) exchangeTCP(wire []byte, id uint16) (*dns.Message, error) {
	redialed := w.tcp == nil
	for {
		if w.tcp == nil {
			conn, err := net.DialTimeout("tcp", w.cfg.Server.String(), w.cfg.Timeout)
			if err != nil {
				return nil, err
			}
			w.tcp = conn
		}
		resp, err := w.tcpRoundTrip(wire, id)
		if err == nil {
			return resp, nil
		}
		_ = w.tcp.Close()
		w.tcp = nil
		if redialed {
			return nil, err
		}
		redialed = true
	}
}

// tcpRoundTrip writes one length-framed query and reads the framed reply.
func (w *worker) tcpRoundTrip(wire []byte, id uint16) (*dns.Message, error) {
	if err := w.tcp.SetDeadline(time.Now().Add(w.cfg.Timeout)); err != nil {
		return nil, err
	}
	var frame [2]byte
	binary.BigEndian.PutUint16(frame[:], uint16(len(wire)))
	if _, err := w.tcp.Write(frame[:]); err != nil {
		return nil, err
	}
	if _, err := w.tcp.Write(wire); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(w.tcp, frame[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(frame[:]))
	if n == 0 {
		return nil, errors.New("loadgen: zero-length tcp frame")
	}
	// TCP answers routinely exceed the UDP buffer — that is why the query
	// fell back — so frames get their own allocation.
	pkt := make([]byte, n)
	if _, err := io.ReadFull(w.tcp, pkt); err != nil {
		return nil, err
	}
	resp, err := dns.DecodeMessage(pkt)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != id {
		return nil, fmt.Errorf("loadgen: tcp response ID %d != %d", resp.Header.ID, id)
	}
	return resp, nil
}
