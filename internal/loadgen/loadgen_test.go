package loadgen

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/metrics"
	"github.com/dnsprivacy/lookaside/internal/simnet"
	"github.com/dnsprivacy/lookaside/internal/udptransport"
)

func collect(t *testing.T, cfg ScheduleConfig, perMinute []int) []Event {
	t.Helper()
	s, err := NewSchedule(cfg, MinuteSource(perMinute))
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	for {
		ev, err := s.Next()
		if err != nil {
			break
		}
		evs = append(evs, ev)
	}
	return evs
}

func TestScheduleDeterministic(t *testing.T) {
	trace, err := dataset.GenerateTrace(dataset.TraceConfig{
		Minutes: 5, Seed: 7, MinRate: 160_000, MaxRate: 360_000, Scale: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScheduleConfig{Clients: 100, PopSize: 1000, Seed: 42}
	a := collect(t, cfg, trace.PerMinute)
	b := collect(t, cfg, trace.PerMinute)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := collect(t, cfg, trace.PerMinute)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleShape(t *testing.T) {
	cfg := ScheduleConfig{Clients: 10, PopSize: 50, Seed: 1}
	evs := collect(t, cfg, []int{30, 0, 45})
	if len(evs) != 75 {
		t.Fatalf("got %d events, want 75", len(evs))
	}
	var prev time.Duration = -1
	clients := map[int32]bool{}
	for i, ev := range evs {
		if ev.At < prev {
			t.Fatalf("event %d out of order: %v after %v", i, ev.At, prev)
		}
		prev = ev.At
		if ev.Client < 0 || int(ev.Client) >= cfg.Clients {
			t.Fatalf("client %d out of range", ev.Client)
		}
		if ev.Name < 0 || int(ev.Name) >= cfg.PopSize {
			t.Fatalf("name index %d out of range", ev.Name)
		}
		clients[ev.Client] = true
	}
	// Minute 1 is empty, so event 30 starts at minute 2.
	if evs[30].At < 2*time.Minute {
		t.Fatalf("event after empty minute at %v", evs[30].At)
	}
	if len(clients) < 5 {
		t.Fatalf("only %d distinct clients over 75 events", len(clients))
	}

	capped := collect(t, ScheduleConfig{Clients: 10, PopSize: 50, Seed: 1, MaxQueries: 10}, []int{30, 0, 45})
	if len(capped) != 10 {
		t.Fatalf("cap ignored: %d events", len(capped))
	}
}

func TestScheduleConfigErrors(t *testing.T) {
	if _, err := NewSchedule(ScheduleConfig{Clients: 0, PopSize: 10}, MinuteSource(nil)); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := NewSchedule(ScheduleConfig{Clients: 1, PopSize: 1}, MinuteSource(nil)); err == nil {
		t.Error("tiny population accepted")
	}
	if _, err := NewSchedule(ScheduleConfig{Clients: 1, PopSize: 10}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

// testServer runs a handler behind real UDP+TCP loopback listeners.
func testServer(t *testing.T, h simnet.Handler) netip.AddrPort {
	t.Helper()
	srv, err := udptransport.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetWorkers(32)
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })
	tcpSrv, err := udptransport.ListenTCP(srv.AddrPort().String(), h)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = tcpSrv.Serve() }()
	t.Cleanup(func() { _ = tcpSrv.Close() })
	return srv.AddrPort()
}

func testNames(popSize int) func(int) dns.Name {
	names := make([]dns.Name, popSize)
	for i := range names {
		names[i] = dns.MustName(fmt.Sprintf("name%04d.example", i))
	}
	return func(i int) dns.Name { return names[i] }
}

// TestReplayTruncationFallbackUnderLoad is the satellite loopback test:
// a fraction of names answer oversized, so the UDP listener truncates and
// the generator must complete them over TCP — under concurrent load, with
// the latency attribution staying consistent.
func TestReplayTruncationFallbackUnderLoad(t *testing.T) {
	big := strings.Repeat("x", 250)
	handler := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		resp := dns.NewResponse(q)
		resp.Header.AA = true
		// Name indices ending in 0 answer ~5 KB of TXT — past the 4096-byte
		// UDP ceiling, so the UDP path sets TC and drops the body.
		if strings.HasSuffix(q.Question[0].Name.FirstLabel(), "0") {
			strs := make([]string, 20)
			for i := range strs {
				strs[i] = big
			}
			resp.Answer = []dns.RR{{
				Name: q.Question[0].Name, Type: dns.TypeTXT, Class: dns.ClassIN,
				Data: &dns.TXTData{Strings: strs},
			}}
		}
		return resp, nil
	})
	addr := testServer(t, handler)

	r, err := New(Config{
		Server:   addr,
		Schedule: ScheduleConfig{Clients: 200, PopSize: 100, Seed: 9, MaxQueries: 2000},
		Source:   MinuteSource([]int{5000}),
		Names:    testNames(100),
		Mode:     ModeClosed,
		Workers:  16,
		Timeout:  2 * time.Second,
		Retries:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 2000 {
		t.Fatalf("sent %d, want 2000", rep.Sent)
	}
	if rep.Completed != rep.Sent {
		t.Fatalf("completed %d of %d (timeouts %d, tcp errors %d)",
			rep.Completed, rep.Sent, rep.Timeouts, rep.TCPErrors)
	}
	// The Zipf head lands on name0000, so truncations are plentiful.
	if rep.Truncated == 0 || rep.TCPFallbacks != rep.Truncated {
		t.Fatalf("truncated=%d fallbacks=%d", rep.Truncated, rep.TCPFallbacks)
	}
	if rep.TCPErrors != 0 {
		t.Fatalf("tcp errors: %d", rep.TCPErrors)
	}
	// Latency attribution: every completion is in the latency histogram,
	// every fallback's TCP leg in the fallback histogram, and a fallback's
	// end-to-end latency can never undercut its TCP leg.
	if got := rep.Latency.Count(); got != uint64(rep.Completed) {
		t.Fatalf("latency histogram holds %d, completed %d", got, rep.Completed)
	}
	if got := rep.Fallback.Count(); got != uint64(rep.TCPFallbacks) {
		t.Fatalf("fallback histogram holds %d, fallbacks %d", got, rep.TCPFallbacks)
	}
	if rep.Latency.Max() < rep.Fallback.Min() {
		t.Fatalf("max end-to-end %v < min tcp leg %v", rep.Latency.Max(), rep.Fallback.Min())
	}
	if rep.QPS <= 0 {
		t.Fatal("no throughput reported")
	}
}

// TestReplayRetryOnSlowFirstAnswer drives the timeout/retry path: the first
// query for each name stalls past the client timeout, so the generator
// re-sends; the same-ID design lets whichever answer lands first complete
// the query.
func TestReplayRetryOnSlowFirstAnswer(t *testing.T) {
	var firsts atomic.Int64
	seen := make(map[dns.Name]bool)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	handler := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		<-mu
		first := !seen[q.Question[0].Name]
		seen[q.Question[0].Name] = true
		mu <- struct{}{}
		if first {
			firsts.Add(1)
			time.Sleep(250 * time.Millisecond)
		}
		return dns.NewResponse(q), nil
	})
	addr := testServer(t, handler)

	r, err := New(Config{
		Server:   addr,
		Schedule: ScheduleConfig{Clients: 8, PopSize: 20, Seed: 3, MaxQueries: 60},
		Source:   MinuteSource([]int{60}),
		Names:    testNames(20),
		Mode:     ModeClosed,
		Workers:  8,
		Timeout:  100 * time.Millisecond,
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("slow first answers triggered no retries")
	}
	if rep.Completed != rep.Sent {
		t.Fatalf("completed %d of %d (timeouts %d)", rep.Completed, rep.Sent, rep.Timeouts)
	}
}

// TestOpenLoopPacing checks that open-loop mode actually follows the
// (compressed) schedule clock rather than blasting as fast as possible.
func TestOpenLoopPacing(t *testing.T) {
	handler := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		return dns.NewResponse(q), nil
	})
	addr := testServer(t, handler)

	// Two trace minutes compressed 600x: ~200ms of wall-clock pacing.
	r, err := New(Config{
		Server:   addr,
		Schedule: ScheduleConfig{Clients: 10, PopSize: 20, Seed: 5},
		Source:   MinuteSource([]int{40, 40}),
		Names:    testNames(20),
		Mode:     ModeOpen,
		Compress: 600,
		Workers:  4,
		Timeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 80 {
		t.Fatalf("completed %d of 80", rep.Completed)
	}
	// The last event of minute 2 sits near trace-time 2min => ~200ms wall.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("open loop finished in %v — schedule not paced", elapsed)
	}
}

// TestRunContextCancel ensures a cancelled run still returns a partial
// report instead of hanging.
func TestRunContextCancel(t *testing.T) {
	handler := simnet.HandlerFunc(func(q *dns.Message, _ netip.Addr) (*dns.Message, error) {
		return dns.NewResponse(q), nil
	})
	addr := testServer(t, handler)

	ctx, cancel := context.WithCancel(context.Background())
	r, err := New(Config{
		Server:   addr,
		Schedule: ScheduleConfig{Clients: 4, PopSize: 10, Seed: 1},
		Source:   MinuteSource([]int{1000}),
		Names:    testNames(10),
		Mode:     ModeOpen, // real-time pacing: the run would take a minute
		Workers:  2,
		Progress: func(minute int, sent int64) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan *Report, 1)
	go func() {
		rep, err := r.Run(ctx)
		if err != nil {
			t.Errorf("cancelled run errored: %v", err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep.Sent >= 1000 {
			t.Fatalf("cancel had no effect: %d sent", rep.Sent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		Mode: ModeOpen, Clients: 10, Workers: 4, Seed: 1,
		Counters: Counters{Sent: 100, Completed: 99, Timeouts: 1, Truncated: 5, TCPFallbacks: 5},
		Wall:     time.Second, QPS: 99,
		Latency: histogramWith(99), Fallback: histogramWith(5),
	}
	out := rep.Render()
	for _, want := range []string{"queries sent", "tcp fallbacks", "latency p99", "max schedule lateness"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func histogramWith(n int) *metrics.Histogram {
	h := metrics.NewHistogram()
	for i := 0; i < n; i++ {
		h.Record(time.Duration(i+1) * time.Millisecond)
	}
	return h
}
