// Package loadgen is the DITL-scale trace-replay load generator: it replays
// the paper's §6.2.3 recursive-resolver workload (92.7M queries at
// 160k–360k queries/minute from thousands of stub clients) against a live
// resolved over real UDP with TC→TCP fallback, and reports the client half
// of the serving-tier scorecard — qps, streaming latency percentiles,
// timeout/retry/SERVFAIL/truncation counts. cmd/dlvload is the CLI.
package loadgen

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Event is one scheduled query: a client issues a lookup of a population
// name at a trace-time offset.
type Event struct {
	// At is the offset from trace start (minute granularity from the
	// trace, paced evenly with seeded jitter inside each minute).
	At time.Duration
	// Client is the simulated stub client issuing the query.
	Client int32
	// Name is the population index of the queried domain (Zipf-sampled:
	// recursive workloads reuse popular names heavily).
	Name int32
}

// ScheduleConfig parameterizes the deterministic query schedule.
type ScheduleConfig struct {
	// Clients is the number of distinct simulated stub clients.
	Clients int
	// PopSize is the population size names are sampled from (>= 2).
	PopSize int
	// Seed drives every random choice: per-minute jitter, client
	// assignment, and name sampling. Same seed + same trace = identical
	// schedule, byte for byte.
	Seed int64
	// MaxQueries caps the schedule length; 0 replays the whole trace.
	MaxQueries int64
	// Uniform samples names uniformly instead of Zipf — a cache-busting
	// flood rather than a recursive workload. This is the adversarial
	// shape overload storms take in the wild: Zipf replay mostly hits the
	// resolver's answer cache, while uniform sampling over a large
	// population forces real resolution work on nearly every query.
	Uniform bool
}

// Schedule streams the deterministic query schedule derived from a
// per-minute trace. It materializes one minute at a time, so the paper's
// full 92.7M-query trace replays in constant memory.
type Schedule struct {
	cfg  ScheduleConfig
	next func() (int, error)

	minute  int
	events  []Event
	pos     int
	emitted int64
}

// NewSchedule builds a schedule over a per-minute query-count source (e.g.
// dataset.TraceReader.Next, or an in-memory trace wrapped by MinuteSource).
// The source returns io.EOF at end of trace.
func NewSchedule(cfg ScheduleConfig, next func() (int, error)) (*Schedule, error) {
	if cfg.Clients <= 0 {
		return nil, errors.New("loadgen: schedule needs at least one client")
	}
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("loadgen: population size %d too small to sample", cfg.PopSize)
	}
	if next == nil {
		return nil, errors.New("loadgen: nil trace source")
	}
	return &Schedule{cfg: cfg, next: next}, nil
}

// MinuteSource adapts an in-memory per-minute series into a schedule
// source.
func MinuteSource(perMinute []int) func() (int, error) {
	i := 0
	return func() (int, error) {
		if i >= len(perMinute) {
			return 0, io.EOF
		}
		q := perMinute[i]
		i++
		return q, nil
	}
}

// Next returns the next scheduled query in time order, or io.EOF when the
// trace (or MaxQueries cap) is exhausted.
func (s *Schedule) Next() (Event, error) {
	if s.cfg.MaxQueries > 0 && s.emitted >= s.cfg.MaxQueries {
		return Event{}, io.EOF
	}
	for s.pos >= len(s.events) {
		q, err := s.next()
		if err != nil {
			return Event{}, err
		}
		s.fillMinute(q)
		s.minute++
	}
	ev := s.events[s.pos]
	s.pos++
	s.emitted++
	return ev, nil
}

// Emitted returns how many events Next has produced.
func (s *Schedule) Emitted() int64 { return s.emitted }

// fillMinute regenerates the event buffer for one trace minute: q queries
// at evenly spaced slots with seeded jitter (order-preserving: jitter never
// crosses a slot boundary), each assigned a client and a Zipf-sampled name
// from a sub-stream seeded by (seed, minute) — so minute k's events are
// identical no matter how much of the trace streamed before it.
func (s *Schedule) fillMinute(q int) {
	s.pos = 0
	if q <= 0 {
		s.events = s.events[:0]
		return
	}
	if cap(s.events) < q {
		s.events = make([]Event, q)
	}
	s.events = s.events[:q]
	rng := rand.New(rand.NewSource(mix64(uint64(s.cfg.Seed), uint64(s.minute))))
	sample := func() int32 { return int32(rng.Intn(s.cfg.PopSize)) }
	if !s.cfg.Uniform {
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(s.cfg.PopSize-1))
		sample = func() int32 { return int32(zipf.Uint64()) }
	}
	base := time.Duration(s.minute) * time.Minute
	slot := time.Minute / time.Duration(q)
	for i := range s.events {
		jitter := time.Duration(rng.Float64() * float64(slot))
		s.events[i] = Event{
			At:     base + time.Duration(i)*slot + jitter,
			Client: int32(rng.Intn(s.cfg.Clients)),
			Name:   sample(),
		}
	}
}

// mix64 is splitmix64's finalizer over a seed/counter pair — the same
// construction internal/faults uses for per-stream draws.
func mix64(a, b uint64) int64 {
	x := a ^ (b * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
