package loadgen

import (
	"fmt"
	"time"

	"github.com/dnsprivacy/lookaside/internal/metrics"
)

// Report is the client half of the serving-tier scorecard for one replay
// run; cmd/dlvload pairs it with the server-side serve.Snapshot delta.
type Report struct {
	Mode    Mode
	Clients int
	Workers int
	Seed    int64

	Counters
	// Wall is the run duration; QPS is Completed / Wall. GoodputQPS is
	// Goodput() / Wall — completions that were real answers, not sheds.
	Wall       time.Duration
	QPS        float64
	GoodputQPS float64
	// Latency holds end-to-end completion latencies (a fallback's total
	// spans both legs); Fallback holds the TCP leg alone, so truncation
	// cost is attributable separately.
	Latency  *metrics.Histogram
	Fallback *metrics.Histogram
	// MaxLateness is the worst schedule slip in open-loop mode: how far
	// behind its scheduled launch time a query actually started.
	MaxLateness time.Duration
}

// Render formats the client-side scorecard table.
func (r *Report) Render() string {
	t := metrics.Table{
		Title:  fmt.Sprintf("trace replay (%s loop, %d clients, %d workers, seed %d)", r.Mode, r.Clients, r.Workers, r.Seed),
		Header: []string{"metric", "value"},
	}
	t.AddRow("queries sent", r.Sent)
	t.AddRow("completed", fmt.Sprintf("%d (%s)", r.Completed, metrics.Percent(ratio(r.Completed, r.Sent))))
	t.AddRow("wall time", r.Wall.Round(time.Millisecond))
	t.AddRow("throughput", fmt.Sprintf("%.0f q/s", r.QPS))
	if r.Refused > 0 {
		t.AddRow("refused (shed)", fmt.Sprintf("%d (%s)", r.Refused, metrics.Percent(ratio(r.Refused, r.Completed))))
		t.AddRow("goodput", fmt.Sprintf("%.0f q/s", r.GoodputQPS))
	}
	t.AddRow("latency p50", r.Latency.Quantile(0.50))
	t.AddRow("latency p95", r.Latency.Quantile(0.95))
	t.AddRow("latency p99", r.Latency.Quantile(0.99))
	t.AddRow("latency p99.9", r.Latency.Quantile(0.999))
	t.AddRow("latency max", r.Latency.Max())
	t.AddRow("timeouts", r.Timeouts)
	t.AddRow("retries", r.Retries)
	t.AddRow("servfails", r.ServFails)
	t.AddRow("truncated (TC)", r.Truncated)
	t.AddRow("tcp fallbacks", fmt.Sprintf("%d (p50 %s)", r.TCPFallbacks, r.Fallback.Quantile(0.50)))
	t.AddRow("tcp errors", r.TCPErrors)
	t.AddRow("stale datagrams", r.Stale)
	if r.Mode == ModeOpen {
		t.AddRow("max schedule lateness", r.MaxLateness.Round(time.Microsecond))
	}
	return t.String()
}

// Goodput is the number of completions that were real answers — sheds
// (REFUSED) complete fast but carry no answer, so they are excluded.
func (c Counters) Goodput() int64 { return c.Completed - c.Refused }

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
