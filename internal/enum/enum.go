// Package enum implements the NSEC zone-enumeration attack of §7.3: the
// DLV registry's aggressive-caching-friendly NSEC chain lets any client
// walk the zone and learn every deposited domain. ("An attacker can gain
// knowledge of all domains in the zone ... After a sufficient number of
// queries, the attacker will potentially know all domains in the DLV
// zone.") NSEC3 blocks the walk — at the price of the §7.3 leakage
// amplification the NSEC3 ablation measures.
package enum

import (
	"errors"
	"fmt"
	"net/netip"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

// Errors returned by the walker.
var (
	ErrNotWalkable = errors.New("enum: zone does not expose an NSEC chain")
	ErrLimit       = errors.New("enum: query limit reached before the chain closed")
)

// Result is the outcome of a zone walk.
type Result struct {
	// Names are the owner names discovered, in chain order (the apex
	// first).
	Names []dns.Name
	// Queries is how many probes the walk needed.
	Queries int
	// Complete reports whether the chain closed back at the apex.
	Complete bool
}

// Walk enumerates a signed zone's NSEC chain by probing nonexistent names
// just past each NSEC owner. src/server address the exchange (the attacker
// and the authoritative server); limit bounds the number of probes.
func Walk(x simnet.Exchanger, src, server netip.Addr, apex dns.Name, limit int) (*Result, error) {
	res := &Result{}
	seen := map[dns.Name]bool{}
	cursor := apex
	var id uint16

	for res.Queries < limit {
		probe, err := justAfter(cursor)
		if err != nil {
			return nil, err
		}
		id++
		q := dns.NewQuery(id, probe, dns.TypeA, true)
		q.Header.RD = false
		resp, err := x.Exchange(src, server, q)
		if err != nil {
			return nil, fmt.Errorf("enum: probing %s: %w", probe, err)
		}
		res.Queries++

		nsec, owner, ok := findNSEC(resp)
		if !ok {
			if res.Queries == 1 {
				return nil, fmt.Errorf("%w: first probe of %s returned no NSEC", ErrNotWalkable, apex)
			}
			// A probe landed on an existing name (NOERROR without NSEC):
			// advance past it.
			cursor = probe
			continue
		}
		for _, n := range []dns.Name{owner, nsec.NextName} {
			if n.IsSubdomainOf(apex) && !seen[n] {
				seen[n] = true
				res.Names = append(res.Names, n)
			}
		}
		if nsec.NextName == apex || !dns.CanonicalLess(cursor, nsec.NextName) {
			// The chain wrapped: enumeration is complete.
			res.Complete = true
			return res, nil
		}
		cursor = nsec.NextName
	}
	return res, fmt.Errorf("%w: %d probes, %d names", ErrLimit, res.Queries, len(res.Names))
}

// justAfter returns a name that sorts canonically immediately after n
// within the same zone: the smallest possible child label.
func justAfter(n dns.Name) (dns.Name, error) {
	return n.Prepend("0")
}

// findNSEC extracts an NSEC record from a response's authority section.
func findNSEC(resp *dns.Message) (*dns.NSECData, dns.Name, bool) {
	for _, rr := range resp.Authority {
		if d, ok := rr.Data.(*dns.NSECData); ok {
			return d, rr.Name, true
		}
	}
	return nil, "", false
}
