package enum

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"github.com/dnsprivacy/lookaside/internal/authserver"
	"github.com/dnsprivacy/lookaside/internal/dlv"
	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/dnssec"
	"github.com/dnsprivacy/lookaside/internal/simnet"
)

var (
	attacker = netip.MustParseAddr("203.0.113.99")
	regAddr  = netip.MustParseAddr("149.20.64.1")
)

// buildRegistry serves a registry with n deposits on a fresh network.
func buildRegistry(t *testing.T, n int, nsec3 bool) (*simnet.Network, *dlv.Registry, []dns.Name) {
	t.Helper()
	reg, err := dlv.NewRegistry(dlv.Config{
		Apex:      dns.MustName("dlv.isc.org"),
		Algorithm: dnssec.AlgFastHMAC,
		Rand:      rand.New(rand.NewSource(1)),
		Inception: 0, Expiration: 1 << 31,
		NSEC3: nsec3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var deposited []dns.Name
	for i := 0; i < n; i++ {
		domain := dns.MustName(fmt.Sprintf("victim%03d.example%d.com", i, i%7))
		key, err := dnssec.GenerateKey(dnssec.AlgFastHMAC, dns.DNSKEYFlagZone|dns.DNSKEYFlagSEP, rng)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := dnssec.MakeDLV(domain, key.Public(), dnssec.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Deposit(domain, rec); err != nil {
			t.Fatal(err)
		}
		deposited = append(deposited, domain)
	}
	net := simnet.New()
	srv, err := authserver.New(authserver.Config{Name: "dlv"}, reg.Zone())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Register(regAddr, "dlv", simnet.RoleDLV, 0, srv); err != nil {
		t.Fatal(err)
	}
	return net, reg, deposited
}

func TestWalkEnumeratesEverything(t *testing.T) {
	const deposits = 25
	net, _, deposited := buildRegistry(t, deposits, false)
	res, err := Walk(net, attacker, regAddr, dns.MustName("dlv.isc.org"), 500)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if !res.Complete {
		t.Fatal("walk did not close the chain")
	}
	found := map[dns.Name]bool{}
	for _, n := range res.Names {
		found[n] = true
	}
	for _, victim := range deposited {
		lookName, err := dlv.LookasideName(victim, dns.MustName("dlv.isc.org"), false)
		if err != nil {
			t.Fatal(err)
		}
		if !found[lookName] {
			t.Errorf("deposit %s not enumerated", lookName)
		}
	}
	// The walk is efficient: roughly one probe per name.
	if res.Queries > deposits*3+10 {
		t.Errorf("walk used %d probes for %d deposits", res.Queries, deposits)
	}
}

func TestWalkBlockedByNSEC3(t *testing.T) {
	net, _, _ := buildRegistry(t, 10, true)
	_, err := Walk(net, attacker, regAddr, dns.MustName("dlv.isc.org"), 100)
	if !errors.Is(err, ErrNotWalkable) {
		t.Fatalf("err = %v, want ErrNotWalkable", err)
	}
}

func TestWalkHonorsLimit(t *testing.T) {
	net, _, _ := buildRegistry(t, 50, false)
	_, err := Walk(net, attacker, regAddr, dns.MustName("dlv.isc.org"), 5)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestWalkEmptyZone(t *testing.T) {
	net, _, _ := buildRegistry(t, 0, false)
	res, err := Walk(net, attacker, regAddr, dns.MustName("dlv.isc.org"), 10)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if !res.Complete {
		t.Fatal("empty zone should close immediately")
	}
	// Only the apex (and possibly its SOA-owner alias) appear.
	if len(res.Names) > 2 {
		t.Fatalf("empty zone enumerated %d names", len(res.Names))
	}
}
