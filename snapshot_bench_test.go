package lookaside

// Warm-state snapshot benchmarks (DESIGN.md §12): cold-boot-to-ready via
// snapshot restore vs. the live warm-up it replaces. `make bench-snapshot`
// regenerates BENCH_snapshot.json; BENCH_snapshot.baseline.json pins the
// committed numbers and scripts/benchdiff.awk gates regressions.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/core"
	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/universe"
)

// BenchmarkSnapshotLoad measures restoring the sealed infrastructure cache
// plus signed-zone signature state from a warm-state snapshot file — the
// whole LoadOrWarm fast path including read, checksum, decode, staleness
// verification, install, and seal. The setup performs the one live warm-up
// the snapshot replaces and reports the ratio as speedup_x: at pop=1000000
// the acceptance floor is 100x (gated in CI).
func BenchmarkSnapshotLoad(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) {
			pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: n, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			u, err := universe.Build(universe.Options{
				Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := u.ResolverConfig(true, true)
			cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0

			warmStart := time.Now()
			ic, err := core.WarmInfra(u, cfg)
			if err != nil {
				b.Fatal(err)
			}
			warm := time.Since(warmStart)

			path := filepath.Join(b.TempDir(), "warm.snap")
			if err := core.SaveWarmState(path, u, cfg, ic); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, mode, err := core.LoadOrWarm(u, cfg, nil, path, nil)
				if err != nil {
					b.Fatal(err)
				}
				if mode != core.BootSnapshot {
					b.Fatal("snapshot refused, benchmark measured a live warm-up")
				}
				if !got.Sealed() {
					b.Fatal("loaded cache is not sealed")
				}
			}
			b.StopTimer()
			load := b.Elapsed() / time.Duration(b.N)
			if load > 0 {
				b.ReportMetric(float64(warm)/float64(load), "speedup_x")
			}
		})
	}
}
