package lookaside

// Overload-protection benchmarks: the per-packet cost of turning a query
// away when the tier is saturated (the shed path must stay orders of
// magnitude cheaper than serving), and the E18 goodput experiment end to
// end — goodput_pct is the share of the shedding rig's plateau it still
// delivers at the highest offered overload, the headline the admission
// controller exists for. One BenchmarkOverloadGoodput iteration runs the
// whole experiment over real sockets, so run with -benchtime=1x.
// docs/results-overload.md records the measured numbers; `make
// bench-overload` regenerates them into BENCH_overload.json.

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/experiment"
	"github.com/dnsprivacy/lookaside/internal/overload"
)

// BenchmarkOverloadShedPath measures one saturated-window admission
// decision plus the pre-encoded REFUSED answer — the work the read loop
// does per packet at the height of a storm.
func BenchmarkOverloadShedPath(b *testing.B) {
	c := overload.New(overload.Config{MaxInFlight: 1, Exec: 1, QueueTarget: time.Millisecond})
	src := netip.MustParseAddr("192.0.2.1")
	// A minimal query packet: header plus one question for example.com A.
	pkt := append([]byte{0, 0, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		[]byte("\x07example\x03com\x00\x00\x01\x00\x01")...)
	if v := c.AdmitFast(pkt, src); v != overload.Admitted {
		b.Fatalf("first admit = %v", v)
	}
	// The window (capacity 1) now stays full: every further packet sheds.
	var dst [overload.HeaderLen]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint16(pkt[:2], uint16(i))
		if v := c.AdmitFast(pkt, src); v != overload.ShedWindow {
			b.Fatalf("admit = %v, want ShedWindow", v)
		}
		resp := overload.RefusedInto(dst[:], pkt)
		if resp[3]&0x0f != 5 {
			b.Fatal("not REFUSED")
		}
	}
}

// BenchmarkOverloadGoodput runs a compact E18 over real loopback sockets
// and reports the headline: goodput_pct (shed-on goodput at 2x offered
// load as a share of the rig's plateau — flat-past-the-ceiling is ~100),
// the same ratio for the unprotected rig, and the shedding rig's p99 at
// 2x. CI gates goodput_pct; collapse_pct is informational (it varies with
// how hard the box collapses).
func BenchmarkOverloadGoodput(b *testing.B) {
	var res *experiment.OverloadResult
	var err error
	for i := 0; i < b.N; i++ {
		// Default options: identical to `dlvmeasure -exp overload -scale
		// 100`, so the bench artifact and the documented experiment are the
		// same measurement.
		res, err = experiment.OverloadWithOpts(experiment.Params{Seed: 1, Scale: 100},
			experiment.OverloadOpts{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*res.GoodputRetention(), "goodput_pct")
	b.ReportMetric(100*res.CollapseRatio(), "collapse_pct")
	b.ReportMetric(res.CapacityQPS, "capacity_qps")
	// The unprotected rig's collapse signature at the top point: its tail
	// latency and timeout count against the shedding rig's (goodput alone
	// understates the damage — timed-out queries and a stretched wall are
	// the operator-visible failure).
	if on, off := res.TopRows(); on != nil && off != nil {
		b.ReportMetric(float64(on.P99.Microseconds())/1000, "p99_on_ms")
		b.ReportMetric(float64(off.P99.Microseconds())/1000, "p99_off_ms")
		b.ReportMetric(float64(off.Timeouts), "timeouts_off")
	}
}
