module github.com/dnsprivacy/lookaside

go 1.22
