package lookaside

// Million-domain sweep benchmarks (DESIGN.md §9): universe setup cost lazy
// vs. eager, end-to-end sweep throughput per population size, and a
// steady-state allocation budget per audited domain. docs/results-sweep.md
// records the measured numbers; `make bench-sweep` regenerates them into
// BENCH_sweep.json.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/dnsprivacy/lookaside/internal/core"
	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/experiment"
	"github.com/dnsprivacy/lookaside/internal/resolver"
	"github.com/dnsprivacy/lookaside/internal/universe"
)

// allocBudgetPerDomain bounds the steady-state allocations of auditing one
// fresh domain on a warm shard with shared infrastructure: wire exchanges
// for the delegation walk, signature checks against the verification
// cache, lazy SLD-zone materialization, capture accounting. Measured ~97
// allocs/domain after the pooled-scratch diet (query/signing/HMAC scratch
// reuse, shared packet-cache sections, canonical-name fast paths); pinned
// with headroom so a regression (say, a cache that stops hitting) fails
// here rather than in a profile.
const allocBudgetPerDomain = 150

// BenchmarkSweepSetup measures universe construction alone — the cost the
// lazy path removes from every sweep point. Population generation is
// excluded (identical either way); eager at pop=1000000 is omitted, it
// takes minutes and ~10 GB, which is exactly the point.
func BenchmarkSweepSetup(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
		pops  []int
	}{
		{"lazy", false, []int{10_000, 100_000, 1_000_000}},
		{"eager", true, []int{10_000, 100_000}},
	} {
		for _, n := range mode.pops {
			b.Run(fmt.Sprintf("%s/pop=%d", mode.name, n), func(b *testing.B) {
				pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: n, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					u, err := universe.Build(universe.Options{
						Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
						Eager: mode.eager,
					})
					if err != nil {
						b.Fatal(err)
					}
					if u.DomainCount() < n {
						b.Fatalf("universe lost domains: %d < %d", u.DomainCount(), n)
					}
				}
			})
		}
	}
}

// BenchmarkSweepThroughput runs one full sweep point per iteration —
// population generation, lazy universe, infrastructure warm-up, and the
// sharded audit of every domain — and reports engine throughput plus the
// live heap afterwards. Run with -benchtime=1x: one iteration is the
// measurement (the sweep audits n domains internally).
func BenchmarkSweepThroughput(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) {
			var last experiment.SweepPoint
			for i := 0; i < b.N; i++ {
				res, err := experiment.Sweep(experiment.Params{Seed: 1, Scale: 1}, []int{n})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Points[0]
			}
			if last.Metrics.Servfails != 0 {
				b.Fatalf("sweep servfailed %d queries", last.Metrics.Servfails)
			}
			b.ReportMetric(last.Timing.DomainsPerSec, "domains/sec")
			b.ReportMetric(last.Timing.HeapAllocMB, "heapMB")
			b.ReportMetric(float64(last.Metrics.LeakedDomains), "leaked")
		})
	}
}

// BenchmarkSweepBaseline is the pre-sweep path for the same job: eager
// universe construction and a ShardedAuditor with self-contained resolvers
// (no shared infrastructure), end to end including setup — what running a
// population point cost before the sweep engine existed. The ratio of
// BenchmarkSweepThroughput's domains/sec to this one's is the speedup
// recorded in docs/results-sweep.md.
func BenchmarkSweepBaseline(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: n, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				u, err := universe.Build(universe.Options{
					Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
					Eager: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := u.ResolverConfig(true, true)
				cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0
				a, err := core.NewShardedAuditor(u, core.ShardedOptions{
					Options: core.Options{Resolver: cfg}, Workers: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := a.QueryDomains(pop.Top(n)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "domains/sec")
		})
	}
}

// TestSweepSteadyStateMemory pins the bounded-cache contract behind the
// sweep's heap ceiling: with tight resolver cache limits, the live heap
// after auditing block k+1 must sit close to the heap after block k. The
// amortized FIFO eviction reclaims expired and over-limit entries on
// insert, so only the intentionally unbounded state — capture's per-domain
// leak ledger and the interned-name table — may grow, and that costs a few
// hundred bytes per domain, not the kilobytes a leaking cache would.
func TestSweepSteadyStateMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-block audit run")
	}
	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
		// Steady-state means *every* cache is bounded below the population:
		// SLD zones, authoritative packet caches, and (below) the resolver's
		// caches. Anything unbounded shows up as per-domain heap growth.
		// Per-server caps must saturate inside the first block: queries
		// spread over dozens of servers, so a cap near the block size would
		// let every cache accrete for the whole run and read as a leak.
		ZoneCacheCap: 512, PacketCacheCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := u.ResolverConfig(true, true)
	cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0
	cfg.Limits = resolver.CacheLimits{
		Answers: 256, Delegations: 256, Zones: 256, Servers: 256, Spans: 256,
	}
	ic, err := core.WarmInfra(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Infra = ic
	a, err := core.NewShardAuditor(u, core.Options{Resolver: cfg})
	if err != nil {
		t.Fatal(err)
	}

	domains := pop.Top(4000)
	heapAfter := func() uint64 {
		// Two collections: the first moves sync.Pool scratches (query
		// buffers, signing state) to the victim cache, the second drops
		// them, so the reading is live data rather than pool phase.
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	const blocks, blockSize = 4, 1000
	var marks [blocks]uint64
	for i := 0; i < blocks; i++ {
		if err := a.QueryDomains(domains[i*blockSize : (i+1)*blockSize]); err != nil {
			t.Fatal(err)
		}
		marks[i] = heapAfter()
	}
	// Caches are saturated by the end of block 2; from there the marginal
	// growth is the per-domain ledger only. 1 KB/domain of headroom is ~4x
	// the ledger cost and far below what unbounded caching leaks.
	growth := int64(marks[blocks-1]) - int64(marks[1])
	perDomain := growth / ((blocks - 2) * blockSize)
	t.Logf("steady-state heap: marks=%v growth=%d B (%d B/domain)", marks, growth, perDomain)
	if perDomain > 1024 {
		t.Errorf("heap grew %d B/domain in steady state (limit 1024): cache eviction not holding", perDomain)
	}
}

// TestSweepAllocationBudget pins the steady-state allocation cost of the
// sweep's inner loop: with infrastructure warmed and shared, auditing a
// fresh domain must stay under allocBudgetPerDomain allocations.
func TestSweepAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := u.ResolverConfig(true, true)
	cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0
	ic, err := core.WarmInfra(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Infra = ic
	a, err := core.NewShardAuditor(u, core.Options{Resolver: cfg})
	if err != nil {
		t.Fatal(err)
	}
	domains := pop.Top(2000)
	// Warm the shard: TLD glue interning, verification cache, lazy SLD
	// synthesis machinery all settle over the first block.
	if err := a.QueryDomains(domains[:500]); err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun(10, f) calls f 11 times (one warm-up run), 100 fresh
	// domains each.
	block := domains[500:1600]
	next := 0
	got := testing.AllocsPerRun(10, func() {
		if err := a.QueryDomains(block[next*100 : (next+1)*100]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	perDomain := got / 100
	t.Logf("measured %.0f allocs/domain", perDomain)
	if perDomain > allocBudgetPerDomain {
		t.Errorf("steady state = %.0f allocs/domain, budget %d", perDomain, allocBudgetPerDomain)
	}
}
