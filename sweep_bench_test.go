package lookaside

// Million-domain sweep benchmarks (DESIGN.md §9): universe setup cost lazy
// vs. eager, end-to-end sweep throughput per population size, and a
// steady-state allocation budget per audited domain. docs/results-sweep.md
// records the measured numbers; `make bench-sweep` regenerates them into
// BENCH_sweep.json.

import (
	"fmt"
	"testing"

	"github.com/dnsprivacy/lookaside/internal/core"
	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/experiment"
	"github.com/dnsprivacy/lookaside/internal/universe"
)

// allocBudgetPerDomain bounds the steady-state allocations of auditing one
// fresh domain on a warm shard with shared infrastructure: wire exchanges
// for the delegation walk, signature checks against the verification
// cache, capture accounting. Measured ~460 allocs/domain; pinned with
// headroom so a regression (say, a cache that stops hitting) fails here
// rather than in a profile.
const allocBudgetPerDomain = 800

// BenchmarkSweepSetup measures universe construction alone — the cost the
// lazy path removes from every sweep point. Population generation is
// excluded (identical either way); eager at pop=1000000 is omitted, it
// takes minutes and ~10 GB, which is exactly the point.
func BenchmarkSweepSetup(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
		pops  []int
	}{
		{"lazy", false, []int{10_000, 100_000, 1_000_000}},
		{"eager", true, []int{10_000, 100_000}},
	} {
		for _, n := range mode.pops {
			b.Run(fmt.Sprintf("%s/pop=%d", mode.name, n), func(b *testing.B) {
				pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: n, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					u, err := universe.Build(universe.Options{
						Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
						Eager: mode.eager,
					})
					if err != nil {
						b.Fatal(err)
					}
					if u.DomainCount() < n {
						b.Fatalf("universe lost domains: %d < %d", u.DomainCount(), n)
					}
				}
			})
		}
	}
}

// BenchmarkSweepThroughput runs one full sweep point per iteration —
// population generation, lazy universe, infrastructure warm-up, and the
// sharded audit of every domain — and reports engine throughput plus the
// live heap afterwards. Run with -benchtime=1x: one iteration is the
// measurement (the sweep audits n domains internally).
func BenchmarkSweepThroughput(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) {
			var last experiment.SweepPoint
			for i := 0; i < b.N; i++ {
				res, err := experiment.Sweep(experiment.Params{Seed: 1, Scale: 1}, []int{n})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Points[0]
			}
			if last.Metrics.Servfails != 0 {
				b.Fatalf("sweep servfailed %d queries", last.Metrics.Servfails)
			}
			b.ReportMetric(last.Timing.DomainsPerSec, "domains/sec")
			b.ReportMetric(last.Timing.HeapAllocMB, "heapMB")
			b.ReportMetric(float64(last.Metrics.LeakedDomains), "leaked")
		})
	}
}

// BenchmarkSweepBaseline is the pre-sweep path for the same job: eager
// universe construction and a ShardedAuditor with self-contained resolvers
// (no shared infrastructure), end to end including setup — what running a
// population point cost before the sweep engine existed. The ratio of
// BenchmarkSweepThroughput's domains/sec to this one's is the speedup
// recorded in docs/results-sweep.md.
func BenchmarkSweepBaseline(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: n, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				u, err := universe.Build(universe.Options{
					Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
					Eager: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := u.ResolverConfig(true, true)
				cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0
				a, err := core.NewShardedAuditor(u, core.ShardedOptions{
					Options: core.Options{Resolver: cfg}, Workers: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := a.QueryDomains(pop.Top(n)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "domains/sec")
		})
	}
}

// TestSweepAllocationBudget pins the steady-state allocation cost of the
// sweep's inner loop: with infrastructure warmed and shared, auditing a
// fresh domain must stay under allocBudgetPerDomain allocations.
func TestSweepAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := u.ResolverConfig(true, true)
	cfg.NSCompletionPercent, cfg.PTRSamplePercent = 0, 0
	ic, err := core.WarmInfra(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Infra = ic
	a, err := core.NewShardAuditor(u, core.Options{Resolver: cfg})
	if err != nil {
		t.Fatal(err)
	}
	domains := pop.Top(2000)
	// Warm the shard: TLD glue interning, verification cache, lazy SLD
	// synthesis machinery all settle over the first block.
	if err := a.QueryDomains(domains[:500]); err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun(10, f) calls f 11 times (one warm-up run), 100 fresh
	// domains each.
	block := domains[500:1600]
	next := 0
	got := testing.AllocsPerRun(10, func() {
		if err := a.QueryDomains(block[next*100 : (next+1)*100]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	perDomain := got / 100
	t.Logf("measured %.0f allocs/domain", perDomain)
	if perDomain > allocBudgetPerDomain {
		t.Errorf("steady state = %.0f allocs/domain, budget %d", perDomain, allocBudgetPerDomain)
	}
}
