//go:build !race

package lookaside

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
