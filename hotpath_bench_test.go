package lookaside

// Wire-level hot path benchmarks: one simnet exchange against an
// authoritative server, with the packet cache on (the default), off, and on
// the retained seed-era reference path. docs/results-hotpath.md records the
// before/after numbers; TestExchangeAllocationBudget pins the steady-state
// allocation ceiling so regressions fail in CI rather than in a profile.

import (
	"math/rand"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/authserver"
	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/dnssec"
	"github.com/dnsprivacy/lookaside/internal/simnet"
	"github.com/dnsprivacy/lookaside/internal/zone"
)

// allocBudgetExchange bounds one warm exchange (pooled query encode,
// question-only server-side decode, packet-cache hit cloned to the caller,
// wire served by ID patch, tap accounting): measured 7 allocs/op, pinned
// with headroom. The seed-era reference path needs ~23 allocations and
// ~3x the time for the same exchange.
const allocBudgetExchange = 10

// newExchangeBench wires one signed zone behind an authoritative server on
// a fresh network and returns the exchange closure plus the network (so the
// fault benchmarks can install plans on the same setup).
func newExchangeBench(tb testing.TB, disableCache bool) (func(id uint16), *simnet.Network) {
	tb.Helper()
	z, err := zone.New(zone.Config{Apex: dns.MustName("example.com"), Serial: 1})
	if err != nil {
		tb.Fatal(err)
	}
	www := dns.MustName("www.example.com")
	if err := z.Add(dns.RR{
		Name: www, Type: dns.TypeA, Class: dns.ClassIN, TTL: 300,
		Data: &dns.AData{Addr: addr4(192, 0, 2, 80)},
	}); err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ksk, err := dnssec.GenerateKey(dnssec.AlgFastHMAC, dns.DNSKEYFlagZone|dns.DNSKEYFlagSEP, rng)
	if err != nil {
		tb.Fatal(err)
	}
	zsk, err := dnssec.GenerateKey(dnssec.AlgFastHMAC, dns.DNSKEYFlagZone, rng)
	if err != nil {
		tb.Fatal(err)
	}
	if err := z.Sign(zone.SignConfig{KSK: ksk, ZSK: zsk, Inception: 0, Expiration: 1 << 31, Rand: rng}); err != nil {
		tb.Fatal(err)
	}
	srv, err := authserver.New(authserver.Config{Name: "ns", DisablePacketCache: disableCache}, z)
	if err != nil {
		tb.Fatal(err)
	}
	net := simnet.New()
	client := addr4(10, 0, 0, 1)
	server := addr4(192, 0, 2, 53)
	if err := net.Register(server, "ns.example.com", simnet.RoleSLD, time.Millisecond, srv); err != nil {
		tb.Fatal(err)
	}
	return func(id uint16) {
		q := dns.NewQuery(id, www, dns.TypeA, true)
		resp, err := net.Exchange(client, server, q)
		if err != nil {
			tb.Fatal(err)
		}
		if resp.Header.ID != id || len(resp.Answer) == 0 {
			tb.Fatalf("bad response: id=%#x answers=%d", resp.Header.ID, len(resp.Answer))
		}
	}, net
}

// BenchmarkExchange measures one DNSSEC exchange end to end. The "cached"
// variant is the default configuration; "uncached" re-assembles and
// re-encodes the response every query; "reference" additionally takes the
// seed-era full encode/decode on both sides of the wire.
func BenchmarkExchange(b *testing.B) {
	run := func(b *testing.B, disableCache bool) {
		exchange, _ := newExchangeBench(b, disableCache)
		exchange(0) // warm the packet cache and intern table
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			exchange(uint16(i))
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, false) })
	b.Run("uncached", func(b *testing.B) { run(b, true) })
	b.Run("reference", func(b *testing.B) {
		simnet.SetReferencePath(true)
		defer simnet.SetReferencePath(false)
		run(b, true)
	})
}

func TestExchangeAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	exchange, _ := newExchangeBench(t, false)
	exchange(0) // warm up
	id := uint16(1)
	got := testing.AllocsPerRun(200, func() {
		exchange(id)
		id++
	})
	if got > allocBudgetExchange {
		t.Errorf("one warm exchange = %.1f allocs, budget %d", got, allocBudgetExchange)
	}
}
