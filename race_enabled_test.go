//go:build race

package lookaside

// raceEnabled reports whether the race detector is active; its
// instrumentation changes escape analysis, so allocation-budget tests skip.
const raceEnabled = true
