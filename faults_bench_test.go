package lookaside

// Fault-layer benchmarks: the E17 retry-amplification experiment end to end
// (`make bench-faults` emits these as BENCH_faults.json) and the per-exchange
// cost of the fault decision path — none installed, an all-zero metering
// plan, and an active loss plan — pinning that fault support stays off the
// clean hot path.

import (
	"testing"

	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/experiment"
	"github.com/dnsprivacy/lookaside/internal/faults"
)

// BenchmarkFaultsExperiment runs E17 at 1% scale and reports its headline
// numbers: registry-visible sends per lookup under a full outage with and
// without the circuit breaker, and the no-breaker amplification factor.
func BenchmarkFaultsExperiment(b *testing.B) {
	var last *experiment.FaultsResult
	for i := 0; i < b.N; i++ {
		res, err := experiment.Faults(benchParams, experiment.FaultKnobs{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	cell := func(condition string, breaker bool) experiment.FaultCell {
		for _, c := range last.Cells {
			if c.Condition == condition && c.Breaker == breaker {
				return c
			}
		}
		b.Fatalf("no cell %s/breaker=%v", condition, breaker)
		return experiment.FaultCell{}
	}
	healthy := cell("healthy", false)
	outage := cell("outage", false)
	protected := cell("outage", true)
	b.ReportMetric(healthy.SendsPerLookup, "sends/lookup@healthy")
	b.ReportMetric(outage.SendsPerLookup, "sends/lookup@outage")
	b.ReportMetric(protected.SendsPerLookup, "sends/lookup@breaker")
	b.ReportMetric(outage.Amplification, "amplification@outage")
}

// BenchmarkFaultedExchange measures one warm authoritative exchange with the
// fault layer in three states. "none" is the baseline hot path (one atomic
// load); "metered" installs an all-zero plan, paying the per-exchange draw
// without perturbing delivery; "loss" runs an active 10% loss plan, where
// dropped exchanges surface as transient errors.
func BenchmarkFaultedExchange(b *testing.B) {
	run := func(b *testing.B, plan *faults.Plan, tolerate bool) {
		exchange, net := newExchangeBench(b, false)
		if plan != nil {
			net.SetFaultPlan(addr4(192, 0, 2, 53), *plan)
		}
		www := dns.MustName("www.example.com")
		q := func(id uint16) {
			if !tolerate {
				exchange(id)
				return
			}
			// Active loss: drops are expected, anything else is not.
			qmsg := dns.NewQuery(id, www, dns.TypeA, true)
			_, err := net.Exchange(addr4(10, 0, 0, 1), addr4(192, 0, 2, 53), qmsg)
			if err != nil && !faults.IsTransient(err) {
				b.Fatal(err)
			}
		}
		q(0) // warm the packet cache and intern table
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q(uint16(i))
		}
	}
	b.Run("none", func(b *testing.B) { run(b, nil, false) })
	b.Run("metered", func(b *testing.B) { run(b, &faults.Plan{Seed: 1}, false) })
	b.Run("loss", func(b *testing.B) { run(b, &faults.Plan{Seed: 1, LossRate: 0.1}, true) })
}

// TestFaultedExchangeAllocationBudget pins that a metered (zero-plan)
// exchange stays within the same allocation budget as a plan-free one: the
// fault layer adds decisions, not allocations.
func TestFaultedExchangeAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	exchange, net := newExchangeBench(t, false)
	net.SetFaultPlan(addr4(192, 0, 2, 53), faults.Plan{Seed: 1})
	exchange(0) // warm up
	id := uint16(1)
	got := testing.AllocsPerRun(200, func() {
		exchange(id)
		id++
	})
	if got > allocBudgetExchange {
		t.Errorf("one warm metered exchange = %.1f allocs, budget %d", got, allocBudgetExchange)
	}
	if _, ok := net.FaultStats(addr4(192, 0, 2, 53)); !ok {
		t.Fatal("fault stats vanished")
	}
}
