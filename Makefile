# Development targets for the lookaside reproduction.

GO ?= go

.PHONY: all build test vet cover bench bench-hotpath bench-faults bench-sweep bench-sweep-baseline bench-serve bench-serve-baseline bench-snapshot bench-snapshot-baseline bench-overload bench-overload-baseline benchdiff benchdiff-serve benchdiff-snapshot benchdiff-overload soak fuzz experiments experiments-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Coverage summary across all packages.
cover:
	$(GO) test -cover ./...

# The benchmark harness: one benchmark per table/figure plus substrate
# microbenchmarks. Metrics in the output are the reproduced rows.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmarks (one simnet exchange plus the leak-curve sweeps) with
# allocation reporting. Emits the raw output to BENCH_hotpath.txt and a
# flat {benchmark: {metric: value}} summary to BENCH_hotpath.json via
# scripts/bench2json.awk.
BENCHTIME ?= 2s

bench-hotpath:
	$(GO) test -run XXX -bench 'BenchmarkExchange|BenchmarkFig8DLVQueries|BenchmarkFig9LeakProportion' \
		-benchmem -benchtime $(BENCHTIME) . | tee BENCH_hotpath.txt
	@awk -f scripts/bench2json.awk BENCH_hotpath.txt > BENCH_hotpath.json
	@cat BENCH_hotpath.json

# Fault benchmarks: the E17 retry-amplification experiment end to end plus
# the per-exchange cost of the fault decision path. Emits the raw output to
# BENCH_faults.txt and a flat {benchmark: {metric: value}} summary to
# BENCH_faults.json.
bench-faults:
	$(GO) test -run XXX -bench 'BenchmarkFaultsExperiment|BenchmarkFaultedExchange' \
		-benchmem -benchtime $(BENCHTIME) . | tee BENCH_faults.txt
	@awk -f scripts/bench2json.awk BENCH_faults.txt > BENCH_faults.json
	@cat BENCH_faults.json

# Million-domain sweep benchmarks (DESIGN.md §9): universe setup lazy vs.
# eager, end-to-end sweep throughput at 10k/100k/1M, and the pre-sweep
# pooled-worker baseline. One iteration per point is the measurement (the
# sweep audits the whole population internally), so this target always runs
# -benchtime=1x; the 1M point takes a few minutes and a few GB. Emits
# BENCH_sweep.txt and BENCH_sweep.json.
bench-sweep:
	$(GO) test -run XXX -bench 'BenchmarkSweepSetup|BenchmarkSweepThroughput|BenchmarkSweepBaseline' \
		-benchmem -benchtime 1x -timeout 60m . | tee BENCH_sweep.txt
	@awk -f scripts/bench2json.awk BENCH_sweep.txt > BENCH_sweep.json
	@cat BENCH_sweep.json

# Serving-tier benchmark: the full resolved stack (resolver pool, shared
# sealed infra, loopback UDP+TCP listeners, stats surface) under the
# trace-replay load generator in closed-loop mode. One iteration replays
# the whole deterministic schedule, so this target always runs
# -benchtime=1x. Emits BENCH_serve.txt and BENCH_serve.json.
bench-serve:
	$(GO) test -run XXX -bench 'BenchmarkServeReplay' \
		-benchtime 1x -timeout 20m . | tee BENCH_serve.txt
	@awk -f scripts/bench2json.awk BENCH_serve.txt > BENCH_serve.json
	@cat BENCH_serve.json

# Refresh the committed serving-tier baseline after an intentional change.
bench-serve-baseline: bench-serve
	cp BENCH_serve.json BENCH_serve.baseline.json

# Warm-state snapshot benchmark (DESIGN.md §12): cold-boot-to-ready via
# snapshot restore at 10k/100k/1M, with the live warm-up it replaces
# reported as speedup_x. The setup warms each population once (the 1M
# point takes minutes — that is the cost being measured), so one timed
# iteration is plenty. Emits BENCH_snapshot.txt and BENCH_snapshot.json.
bench-snapshot:
	$(GO) test -run XXX -bench 'BenchmarkSnapshotLoad' \
		-benchmem -benchtime 1x -timeout 30m . | tee BENCH_snapshot.txt
	@awk -f scripts/bench2json.awk BENCH_snapshot.txt > BENCH_snapshot.json
	@cat BENCH_snapshot.json

# Refresh the committed snapshot-boot baseline after an intentional change.
bench-snapshot-baseline: bench-snapshot
	cp BENCH_snapshot.json BENCH_snapshot.baseline.json

# Overload-protection benchmarks (DESIGN.md §13): the per-packet cost of
# the shed path, and the E18 goodput experiment end to end — goodput_pct
# is the share of its plateau the shedding rig keeps at 2x offered load.
# One goodput iteration runs the whole experiment over real sockets, so
# this target always runs -benchtime=1x. Emits BENCH_overload.txt and
# BENCH_overload.json.
bench-overload:
	$(GO) test -run XXX -bench 'BenchmarkOverloadShedPath|BenchmarkOverloadGoodput' \
		-benchtime 1x -timeout 20m . | tee BENCH_overload.txt
	@awk -f scripts/bench2json.awk BENCH_overload.txt > BENCH_overload.json
	@cat BENCH_overload.json

# Refresh the committed overload baseline after an intentional change.
bench-overload-baseline: bench-overload
	cp BENCH_overload.json BENCH_overload.baseline.json

# The deterministic chaos soak (internal/soak): full UDP/TCP stack, seeded
# registry faults, admission control under a cache-busting storm, run
# under the race detector. SOAK_SEED picks the fault plan; the seed is in
# the test log, so a CI failure reproduces with `make soak SOAK_SEED=n`.
SOAK_SEED ?= 1

soak:
	@echo "chaos soak: seed $(SOAK_SEED)"
	SOAK_SEED=$(SOAK_SEED) $(GO) test -race -run 'TestChaosSoak|TestPlanDeterminism' -v -count=1 ./internal/soak

# Regression gate: compare a fresh BENCH_sweep.json (run `make bench-sweep`
# first) against the committed baseline at the default 10% threshold —
# meant for before/after runs on the same machine. CI uses the same script
# with a loose threshold because its hardware differs from the baseline's.
benchdiff:
	awk -f scripts/benchdiff.awk BENCH_sweep.baseline.json BENCH_sweep.json

# Same gate for the serving tier (run `make bench-serve` first).
benchdiff-serve:
	awk -f scripts/benchdiff.awk BENCH_serve.baseline.json BENCH_serve.json

# Same gate for snapshot boot (run `make bench-snapshot` first).
benchdiff-snapshot:
	awk -f scripts/benchdiff.awk BENCH_snapshot.baseline.json BENCH_snapshot.json

# Same gate for overload protection (run `make bench-overload` first).
benchdiff-overload:
	awk -f scripts/benchdiff.awk BENCH_overload.baseline.json BENCH_overload.json

# Refresh the committed baseline after an intentional performance change.
# The baseline has its own name so `make clean` (which removes the
# regenerated-on-demand BENCH_*.json artifacts) never deletes it.
bench-sweep-baseline: bench-sweep
	cp BENCH_sweep.json BENCH_sweep.baseline.json

# Short fuzzing pass over every Fuzz* target (wire decoder, zone parser,
# fault schedules). -fuzz accepts a single target per run, so discover and
# loop.
FUZZ_PKGS = ./internal/dns ./internal/zonefile ./internal/faults ./internal/snapshot ./internal/core

fuzz:
	@set -e; for pkg in $(FUZZ_PKGS); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			$(GO) test -fuzz="^$$target\$$" -fuzztime=30s $$pkg; \
		done; \
	done

# Regenerate every table and figure at 10% scale (about two minutes).
experiments:
	$(GO) run ./cmd/dlvmeasure -exp all -seed 1 -scale 10

# Paper-scale run (top-1M sweep; takes a while and needs a few GB of RAM).
experiments-full:
	$(GO) run ./cmd/dlvmeasure -exp all -seed 1 -scale 1

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt BENCH_hotpath.txt BENCH_hotpath.json \
		BENCH_faults.txt BENCH_faults.json BENCH_sweep.txt BENCH_sweep.json \
		BENCH_serve.txt BENCH_serve.json BENCH_snapshot.txt BENCH_snapshot.json \
		BENCH_overload.txt BENCH_overload.json
