package lookaside

// Serving-tier benchmarks: the full production stack — resolver pool with
// shared sealed infrastructure, real loopback UDP+TCP listeners, the
// over-the-wire stats surface — driven by the trace-replay load generator
// (internal/loadgen) in closed-loop mode. One iteration replays the whole
// deterministic schedule, so run with -benchtime=1x; ns/op is the replay
// wall time and the custom metrics carry throughput and tail latency.
// docs/results-serve.md records the measured numbers; `make bench-serve`
// regenerates them into BENCH_serve.json.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/loadgen"
	"github.com/dnsprivacy/lookaside/internal/serve"
	"github.com/dnsprivacy/lookaside/internal/udptransport"
	"github.com/dnsprivacy/lookaside/internal/universe"
)

// BenchmarkServeReplay measures end-to-end serving throughput: qps over the
// wire, p50/p99 completion latency, and the server-side packet-cache hit
// rate across a Zipf-shaped query stream from 1,000 simulated clients.
func BenchmarkServeReplay(b *testing.B) {
	for _, p := range []struct {
		pop, clients, queries int
	}{
		{2_000, 500, 10_000},
		{10_000, 1_000, 50_000},
	} {
		b.Run(fmt.Sprintf("pop=%d/queries=%d", p.pop, p.queries), func(b *testing.B) {
			benchServeReplay(b, p.pop, p.clients, p.queries)
		})
	}
}

func benchServeReplay(b *testing.B, popSize, clients, queries int) {
	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: popSize, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const serveWorkers = 4
	svc, err := serve.Build(u, u.ResolverConfig(true, true), serve.Options{
		Workers: serveWorkers, SharedInfra: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := udptransport.Listen("127.0.0.1:0", svc)
	if err != nil {
		b.Fatal(err)
	}
	srv.SetWorkers(serveWorkers)
	go func() { _ = srv.Serve() }()
	defer func() { _ = srv.Close() }()
	tcpSrv, err := udptransport.ListenTCP(srv.AddrPort().String(), svc)
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = tcpSrv.Serve() }()
	defer func() { _ = tcpSrv.Close() }()
	svc.AttachTransports(srv, tcpSrv)

	names := make([]dns.Name, len(pop.Domains))
	for i, d := range pop.Domains {
		names[i] = d.Name
	}
	before := svc.Snapshot()

	b.ResetTimer()
	var rep *loadgen.Report
	for i := 0; i < b.N; i++ {
		runner, err := loadgen.New(loadgen.Config{
			Server: srv.AddrPort(),
			Schedule: loadgen.ScheduleConfig{
				Clients: clients, PopSize: popSize, Seed: 1, MaxQueries: int64(queries),
			},
			Source:   loadgen.MinuteSource([]int{queries}),
			Names:    func(i int) dns.Name { return names[i] },
			DNSSECOK: true,
			Mode:     loadgen.ModeClosed,
			Workers:  128,
			Timeout:  5 * time.Second,
			Retries:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err = runner.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != int64(queries) {
			b.Fatalf("completed %d of %d (timeouts %d)", rep.Completed, queries, rep.Timeouts)
		}
	}
	b.StopTimer()
	delta := svc.Snapshot().Minus(before)
	b.ReportMetric(rep.QPS, "qps")
	b.ReportMetric(float64(rep.Latency.Quantile(0.50).Microseconds()), "p50_us")
	b.ReportMetric(float64(rep.Latency.Quantile(0.99).Microseconds()), "p99_us")
	b.ReportMetric(delta.PacketCacheHitRate()*100, "pktcache_hit_%")
}
