package lookaside

// Serving-tier benchmarks: the full production stack — resolver pool with
// shared sealed infrastructure, real loopback UDP+TCP listeners, the
// over-the-wire stats surface — driven by the trace-replay load generator
// (internal/loadgen) in closed-loop mode. One iteration replays the whole
// deterministic schedule, so run with -benchtime=1x; ns/op is the replay
// wall time and the custom metrics carry throughput and tail latency.
// docs/results-serve.md records the measured numbers; `make bench-serve`
// regenerates them into BENCH_serve.json.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/dnsprivacy/lookaside/internal/dataset"
	"github.com/dnsprivacy/lookaside/internal/dns"
	"github.com/dnsprivacy/lookaside/internal/loadgen"
	"github.com/dnsprivacy/lookaside/internal/serve"
	"github.com/dnsprivacy/lookaside/internal/udptransport"
	"github.com/dnsprivacy/lookaside/internal/universe"
)

// BenchmarkServeReplay measures end-to-end serving throughput: qps over the
// wire, p50/p99 completion latency, and the server-side packet-cache hit
// rate across a Zipf-shaped query stream from 1,000 simulated clients.
func BenchmarkServeReplay(b *testing.B) {
	for _, p := range []struct {
		pop, clients, queries int
	}{
		{2_000, 500, 10_000},
		{10_000, 1_000, 50_000},
	} {
		b.Run(fmt.Sprintf("pop=%d/queries=%d", p.pop, p.queries), func(b *testing.B) {
			benchServeReplay(b, p.pop, p.clients, p.queries)
		})
	}
}

func benchServeReplay(b *testing.B, popSize, clients, queries int) {
	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: popSize, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const serveWorkers = 4
	svc, err := serve.Build(u, u.ResolverConfig(true, true), serve.Options{
		Workers: serveWorkers, SharedInfra: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := udptransport.Listen("127.0.0.1:0", svc)
	if err != nil {
		b.Fatal(err)
	}
	srv.SetWorkers(serveWorkers)
	go func() { _ = srv.Serve() }()
	defer func() { _ = srv.Close() }()
	tcpSrv, err := udptransport.ListenTCP(srv.AddrPort().String(), svc)
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = tcpSrv.Serve() }()
	defer func() { _ = tcpSrv.Close() }()
	svc.AttachTransports(srv, tcpSrv)

	names := make([]dns.Name, len(pop.Domains))
	for i, d := range pop.Domains {
		names[i] = d.Name
	}
	before := svc.Snapshot()

	b.ResetTimer()
	var rep *loadgen.Report
	for i := 0; i < b.N; i++ {
		runner, err := loadgen.New(loadgen.Config{
			Server: srv.AddrPort(),
			Schedule: loadgen.ScheduleConfig{
				Clients: clients, PopSize: popSize, Seed: 1, MaxQueries: int64(queries),
			},
			Source:   loadgen.MinuteSource([]int{queries}),
			Names:    func(i int) dns.Name { return names[i] },
			DNSSECOK: true,
			Mode:     loadgen.ModeClosed,
			Workers:  128,
			Timeout:  5 * time.Second,
			Retries:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err = runner.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != int64(queries) {
			b.Fatalf("completed %d of %d (timeouts %d)", rep.Completed, queries, rep.Timeouts)
		}
	}
	b.StopTimer()
	delta := svc.Snapshot().Minus(before)
	b.ReportMetric(rep.QPS, "qps")
	b.ReportMetric(float64(rep.Latency.Quantile(0.50).Microseconds()), "p50_us")
	b.ReportMetric(float64(rep.Latency.Quantile(0.99).Microseconds()), "p99_us")
	b.ReportMetric(delta.PacketCacheHitRate()*100, "pktcache_hit_%")
	// Width context: perf numbers from different core counts or shard
	// layouts must never be diffed against each other (benchdiff skips the
	// compare when these mismatch).
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(srv.Shards()), "udp_shards")
}

// BenchmarkServeReplayMC measures multi-core scaling of the sharded UDP
// serving tier: the same closed-loop replay against one service, first over
// a single-socket listener and then over a 4-shard SO_REUSEPORT listener,
// both at GOMAXPROCS=4. The benchmark pins GOMAXPROCS itself so the scaling
// factor (speedup_x) means the same thing on any machine; on boxes with
// fewer than 4 cores, or platforms without SO_REUSEPORT, it still runs but
// the speedup is not meaningful — CI gates on it only when cpus >= 4.
// Run with -benchtime=1x; ns/op is the sharded replay wall time.
func BenchmarkServeReplayMC(b *testing.B) {
	const (
		popSize = 2_000
		clients = 500
		queries = 10_000
		shards  = 4
	)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	pop, err := dataset.AlexaLike(dataset.PopulationConfig{Size: popSize, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	u, err := universe.Build(universe.Options{
		Seed: 1, Population: pop, Extra: dataset.SecureDomains(),
	})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := serve.Build(u, u.ResolverConfig(true, true), serve.Options{
		Workers: 4, SharedInfra: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]dns.Name, len(pop.Domains))
	for i, d := range pop.Domains {
		names[i] = d.Name
	}

	// Warm pass (untimed): fills the packet and answer caches so both
	// measured passes serve from the same warm state.
	replayOnce(b, svc, names, 1, popSize, clients, queries)
	singleQPS, _ := replayOnce(b, svc, names, 1, popSize, clients, queries)

	b.ResetTimer()
	var shardQPS float64
	var bound int
	for i := 0; i < b.N; i++ {
		shardQPS, bound = replayOnce(b, svc, names, shards, popSize, clients, queries)
	}
	b.StopTimer()
	b.ReportMetric(shardQPS, "qps")
	b.ReportMetric(shardQPS/singleQPS, "speedup_x")
	b.ReportMetric(float64(bound), "udp_shards")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// replayOnce binds a fresh listener pair with the given shard count over an
// existing service, replays the deterministic schedule closed-loop, and
// returns the measured qps plus the shard count actually bound (platforms
// without SO_REUSEPORT fall back to 1).
func replayOnce(b *testing.B, svc *serve.Service, names []dns.Name, shards, popSize, clients, queries int) (float64, int) {
	b.Helper()
	srv, err := udptransport.ListenShards("127.0.0.1:0", svc, shards)
	if err != nil {
		b.Fatal(err)
	}
	srv.SetWorkers(4)
	go func() { _ = srv.Serve() }()
	defer func() { _ = srv.Close() }()
	tcpSrv, err := udptransport.ListenTCP(srv.AddrPort().String(), svc)
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = tcpSrv.Serve() }()
	defer func() { _ = tcpSrv.Close() }()
	svc.AttachTransports(srv, tcpSrv)

	runner, err := loadgen.New(loadgen.Config{
		Server: srv.AddrPort(),
		Schedule: loadgen.ScheduleConfig{
			Clients: clients, PopSize: popSize, Seed: 1, MaxQueries: int64(queries),
		},
		Source:   loadgen.MinuteSource([]int{queries}),
		Names:    func(i int) dns.Name { return names[i] },
		DNSSECOK: true,
		Mode:     loadgen.ModeClosed,
		Workers:  128,
		Timeout:  5 * time.Second,
		Retries:  1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := runner.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if rep.Completed != int64(queries) {
		b.Fatalf("completed %d of %d (timeouts %d)", rep.Completed, queries, rep.Timeouts)
	}
	return rep.QPS, srv.Shards()
}
